// dlint — determinism & concurrency lint for the dinfomap tree (DESIGN.md §11).
//
// A single-binary, token/regex-level checker for the nondeterminism and
// locking mistakes PRs 1–4 each had to hunt down by hand. No libclang: every
// rule works on comment- and string-stripped source text, so it runs in
// milliseconds over the whole tree and gates CI (ci/check.sh, `ctest -L lint`).
//
// Rules (each named, each suppressible per-line):
//   unordered-iter    range-for / iterator loop over std::unordered_{map,set}
//                     in order-sensitive dirs (src/core, src/comm,
//                     src/quality). Hash order is stable per binary but not
//                     across standard libraries; anything it feeds — FP
//                     reductions, message layouts, label assignment — silently
//                     breaks the bit-reproducibility contract. Fix with
//                     util::sorted_keys / util::sorted_elems, or justify.
//                     Note — shared-round-counter: the same hidden-coupling
//                     bug also hides in *shared counters*: keying a per-pair
//                     decision on a global round index (e.g. the old
//                     `round_index_ & 1` tiebreak in the min-label guard)
//                     silently couples the decision to how many rounds every
//                     OTHER vertex has run, which breaks as soon as an engine
//                     advances the counter differently (the async engine's
//                     epochs vs the sync engine's rounds). Prefer verdicts
//                     that are pure functions of the entities being compared
//                     (see DistRank::min_label_yields). No automated rule
//                     fires on this — counters are indistinguishable from
//                     legitimate state at token level — so it rides here as a
//                     review checklist item for order-sensitive dirs.
//   raw-rng           rand()/srand()/std::random_device/std::mt19937 outside
//                     src/util/random.* — all randomness must flow from the
//                     seeded util::Xoshiro256 / derive_seed plumbing.
//   wall-clock        time()/std::chrono::system_clock outside src/util/timer.hpp
//                     and src/obs — wall time in algorithm code is a hidden
//                     input; steady_clock via util::Timer is fine.
//   raw-mutex-lock    manual .lock()/.unlock() member calls — use a scoped
//                     guard (util::MutexLock, std::lock_guard); a throw
//                     between the pair leaks the lock.
//   float-accum-order `+=` inside a loop iterating an unordered container
//                     (any dir) — the classic hash-order FP reduction.
//   sleep-sync        sleep_for/sleep_until outside fault-injection stalls
//                     and timer tests — a sleep standing in for
//                     synchronization hides a race behind timing.
//   lock-order        whole-scan pass: every scoped-guard / DI_ACQUIRE
//                     acquisition feeds a global held->acquired graph; a
//                     cycle (including an unsanctioned relock) fails the
//                     scan naming every order-reversing site. Pair guards
//                     that enforce an internal total order carry a
//                     `dlint:ordered-pair(LockType)` marker on their class.
//   unknown-rule      a dlint:allow() marker naming a rule that does not
//                     exist — a typo'd allow would otherwise suppress
//                     nothing and rot silently.
//
// Suppression: `// dlint:allow(<rule>[,<rule>...]): <why>` on the flagged
// line, or in a comment block immediately above it (blank lines between the
// block and the code do not break the attachment). The "why" is mandatory by
// convention (reviewed, not parsed).
//
// Exit codes: 0 clean, 1 findings, 2 usage/IO error.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Finding {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

struct Options {
  bool json = false;
  bool list_rules = false;
  std::string root;
  std::vector<std::string> order_dirs = {"src/core", "src/comm", "src/quality"};
  std::vector<std::string> paths;
};

const char* kRuleCatalog[][2] = {
    {"unordered-iter",
     "hash-order iteration over std::unordered_{map,set} in order-sensitive "
     "dirs"},
    {"raw-rng", "raw RNG outside src/util/random.*"},
    {"wall-clock", "wall-clock time outside src/util/timer.hpp and src/obs"},
    {"raw-mutex-lock", "manual .lock()/.unlock() instead of a scoped guard"},
    {"float-accum-order", "`+=` accumulation inside an unordered-container loop"},
    {"sleep-sync",
     "sleep_for/sleep_until as a synchronization tool; real code waits on a "
     "cv/future — sleeps belong only in fault-injection stalls and timing "
     "tests"},
    {"lock-order",
     "global lock-order graph (scoped guards + DI_ACQUIRE sites) has a cycle "
     "or an unsanctioned same-lock reacquisition"},
    {"unknown-rule", "a dlint:allow() marker names a rule that does not exist"},
};

bool known_rule(const std::string& name) {
  for (const auto& r : kRuleCatalog)
    if (name == r[0]) return true;
  return false;
}

std::string normalize(std::string path) {
  std::replace(path.begin(), path.end(), '\\', '/');
  return path;
}

bool path_contains_dir(const std::string& path, const std::string& dir) {
  const std::string needle = dir.back() == '/' ? dir : dir + "/";
  if (path.find("/" + needle) != std::string::npos) return true;
  return path.rfind(needle, 0) == 0;  // relative path starting with the dir
}

/// Length of the raw-string introducer at `in[i]` — `R"`, `u8R"`, `uR"`,
/// `UR"`, `LR"` — or 0 when `i` does not start one. The prefix must begin at
/// an identifier boundary: `FooR"` is an identifier followed by a plain
/// string, not a raw literal.
std::size_t raw_intro_len(const std::string& in, std::size_t i) {
  static const char* kPrefixes[] = {"u8R\"", "uR\"", "UR\"", "LR\"", "R\""};
  if (i > 0 && (std::isalnum(static_cast<unsigned char>(in[i - 1])) ||
                in[i - 1] == '_'))
    return 0;
  for (const char* p : kPrefixes) {
    const std::size_t n = std::char_traits<char>::length(p);
    if (in.compare(i, n, p) == 0) return n;
  }
  return 0;
}

/// Whether a physical line ends in a backslash splice (an odd run of
/// trailing backslashes), which continues the current lexical element —
/// line comment or string literal — onto the next line.
bool ends_with_splice(const std::string& in) {
  std::size_t n = 0;
  for (auto it = in.rbegin(); it != in.rend() && *it == '\\'; ++it) ++n;
  return (n % 2) == 1;
}

/// Blank out comments, string literals, and char literals, preserving line
/// structure (every stripped char becomes a space). Rules then cannot fire on
/// text inside comments or strings; allow-markers are read from raw lines.
std::vector<std::string> strip_source(const std::vector<std::string>& lines) {
  std::vector<std::string> out(lines.size());
  enum class State {
    kCode, kLineComment, kBlockComment, kString, kChar, kRawString,
  };
  State state = State::kCode;
  std::string raw_delim;  // for R"delim( ... )delim"
  for (std::size_t li = 0; li < lines.size(); ++li) {
    const std::string& in = lines[li];
    std::string& res = out[li];
    res.assign(in.size(), ' ');
    // A `// comment \` splice carried this line into the comment.
    if (state == State::kLineComment)
      state = ends_with_splice(in) ? State::kLineComment : State::kCode;
    else
      for (std::size_t i = 0; i < in.size(); ++i) {
        const char c = in[i];
        switch (state) {
          case State::kCode: {
            const std::size_t raw_n = raw_intro_len(in, i);
            if (c == '/' && i + 1 < in.size() && in[i + 1] == '/') {
              if (ends_with_splice(in)) state = State::kLineComment;
              i = in.size();  // rest of line is a comment
            } else if (c == '/' && i + 1 < in.size() && in[i + 1] == '*') {
              state = State::kBlockComment;
              ++i;
            } else if (raw_n != 0) {
              const auto paren = in.find('(', i + raw_n);
              if (paren != std::string::npos) {
                raw_delim =
                    ")" + in.substr(i + raw_n, paren - (i + raw_n)) + "\"";
                state = State::kRawString;
                res[i] = in[i];  // keep the prefix char so tokens stay intact
                i = paren;
              } else {
                res[i] = c;  // malformed; treat as code
              }
            } else if (c == '"') {
              state = State::kString;
            } else if (c == '\'') {
              state = State::kChar;
            } else {
              res[i] = c;
            }
            break;
          }
          case State::kLineComment:
            i = in.size();
            break;
          case State::kBlockComment:
            if (c == '*' && i + 1 < in.size() && in[i + 1] == '/') {
              state = State::kCode;
              ++i;
            }
            break;
          case State::kString:
            if (c == '\\') {
              ++i;
            } else if (c == '"') {
              state = State::kCode;
            }
            break;
          case State::kChar:
            if (c == '\\') {
              ++i;
            } else if (c == '\'') {
              state = State::kCode;
            }
            break;
          case State::kRawString: {
            const auto end = in.find(raw_delim, i);
            if (end != std::string::npos) {
              i = end + raw_delim.size() - 1;
              state = State::kCode;
            } else {
              i = in.size();
            }
            break;
          }
        }
      }
    // Line-based states end at the newline unless a backslash splice
    // continues them (`"abc \` is a multi-line string literal).
    if (state == State::kString || state == State::kChar) {
      if (!ends_with_splice(in)) state = State::kCode;
    }
  }
  return out;
}

bool is_blank(const std::string& s) {
  return std::all_of(s.begin(), s.end(),
                     [](unsigned char c) { return std::isspace(c); });
}

/// Per-line allowed rules: a `dlint:allow(rule[, rule...])` marker suppresses
/// findings on its own line; markers on pure-comment lines roll forward onto
/// the next line that carries code (blank lines in between do not break the
/// attachment). A marker naming a rule dlint does not have is itself a
/// finding — a typo'd allow would otherwise silently suppress nothing.
std::vector<std::vector<std::string>> collect_allows(
    const std::string& file, const std::vector<std::string>& raw,
    const std::vector<std::string>& code, std::vector<Finding>& findings) {
  static const std::regex allow_re(
      R"(dlint:allow\(([A-Za-z-]+(?:\s*,\s*[A-Za-z-]+)*)\))");
  std::vector<std::vector<std::string>> allows(raw.size());
  std::vector<std::string> pending;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    std::vector<std::string> here;
    for (std::sregex_iterator it(raw[i].begin(), raw[i].end(), allow_re), end;
         it != end; ++it) {
      std::stringstream list((*it)[1]);
      for (std::string rule; std::getline(list, rule, ',');) {
        rule.erase(std::remove_if(rule.begin(), rule.end(),
                                  [](unsigned char c) {
                                    return std::isspace(c) != 0;
                                  }),
                   rule.end());
        if (rule.empty()) continue;
        if (!known_rule(rule)) {
          findings.push_back(
              {file, i + 1, "unknown-rule",
               "dlint:allow(" + rule +
                   ") names a rule dlint does not have; see --list-rules"});
          continue;
        }
        here.push_back(rule);
      }
    }
    if (is_blank(code[i])) {
      // Comment-only (or empty) line: markers wait for the next code line.
      pending.insert(pending.end(), here.begin(), here.end());
    } else {
      allows[i] = std::move(pending);
      pending.clear();
      allows[i].insert(allows[i].end(), here.begin(), here.end());
    }
  }
  return allows;
}

bool allowed(const std::vector<std::vector<std::string>>& allows,
             std::size_t line_idx, const std::string& rule) {
  if (line_idx >= allows.size()) return false;
  const auto& v = allows[line_idx];
  return std::find(v.begin(), v.end(), rule) != v.end();
}

/// Names declared as std::unordered_{map,set,...} anywhere in the file.
/// Scope-insensitive on purpose: a false positive costs one allow-comment, a
/// false negative costs a nondeterminism bug.
std::vector<std::string> unordered_names(const std::vector<std::string>& code) {
  std::vector<std::string> names;
  // Join so declarations spanning lines still parse.
  std::string all;
  for (const auto& l : code) {
    all += l;
    all += '\n';
  }
  static const std::string kTag = "unordered_";
  for (std::size_t pos = all.find(kTag); pos != std::string::npos;
       pos = all.find(kTag, pos + kTag.size())) {
    std::size_t p = pos + kTag.size();
    // Accept map/set/multimap/multiset.
    const char* kinds[] = {"multimap", "multiset", "map", "set"};
    bool matched = false;
    for (const char* k : kinds) {
      const std::size_t n = std::string(k).size();
      if (all.compare(p, n, k) == 0) {
        p += n;
        matched = true;
        break;
      }
    }
    if (!matched) continue;
    while (p < all.size() && std::isspace(static_cast<unsigned char>(all[p])))
      ++p;
    if (p >= all.size() || all[p] != '<') continue;
    int depth = 0;
    while (p < all.size()) {
      if (all[p] == '<') ++depth;
      else if (all[p] == '>') {
        --depth;
        if (depth == 0) break;
      }
      ++p;
    }
    if (p >= all.size()) continue;
    ++p;  // past closing '>'
    while (p < all.size() &&
           (std::isspace(static_cast<unsigned char>(all[p])) || all[p] == '&' ||
            all[p] == '*'))
      ++p;
    std::size_t q = p;
    while (q < all.size() && (std::isalnum(static_cast<unsigned char>(all[q])) ||
                              all[q] == '_'))
      ++q;
    if (q > p) {
      std::string name = all.substr(p, q - p);
      if (name != "const" && name != "return" &&
          std::find(names.begin(), names.end(), name) == names.end())
        names.push_back(name);
    }
  }
  return names;
}

/// Final identifier component of a range-for's iterable expression, or ""
/// when the expression is a call / index / temporary we do not track.
std::string iterable_name(std::string expr) {
  while (!expr.empty() &&
         std::isspace(static_cast<unsigned char>(expr.back())))
    expr.pop_back();
  if (expr.empty()) return "";
  const char last = expr.back();
  if (last == ')' || last == ']' || last == '>') return "";  // call/index/temp
  std::size_t q = expr.size();
  while (q > 0 && (std::isalnum(static_cast<unsigned char>(expr[q - 1])) ||
                   expr[q - 1] == '_'))
    --q;
  return expr.substr(q);
}

/// [first, last] line range of the statement/block controlled by a `for`
/// whose header closes on `header_end`. Used by float-accum-order.
std::pair<std::size_t, std::size_t> loop_body_range(
    const std::vector<std::string>& code, std::size_t header_end,
    std::size_t close_pos) {
  int brace = 0;
  bool seen_brace = false;
  for (std::size_t li = header_end; li < code.size(); ++li) {
    const std::string& l = code[li];
    for (std::size_t i = li == header_end ? close_pos : 0; i < l.size(); ++i) {
      if (l[i] == ';' && !seen_brace && brace == 0 && i > close_pos)
        return {header_end, li};  // single-statement body
      if (l[i] == '{') {
        ++brace;
        seen_brace = true;
      } else if (l[i] == '}') {
        --brace;
        if (seen_brace && brace == 0) return {header_end, li};
      }
    }
    if (!seen_brace && li > header_end && !is_blank(l)) {
      // Single statement on the following line(s): run to its ';'.
      for (std::size_t lj = li; lj < code.size(); ++lj)
        if (code[lj].find(';') != std::string::npos) return {header_end, lj};
      return {header_end, li};
    }
  }
  return {header_end, code.size() - 1};
}

struct RangeFor {
  std::size_t header_line;  ///< line the `for (` starts on
  std::size_t close_line;   ///< line its `)` closes on
  std::size_t close_pos;    ///< column of that `)`
  std::string iterable;     ///< trailing identifier of the range expression
};

/// All range-fors (and their iterables) in the file; headers may span lines.
std::vector<RangeFor> find_range_fors(const std::vector<std::string>& code) {
  std::vector<RangeFor> out;
  for (std::size_t li = 0; li < code.size(); ++li) {
    const std::string& l = code[li];
    for (std::size_t pos = 0; (pos = l.find("for", pos)) != std::string::npos;
         pos += 3) {
      const bool word_start =
          pos == 0 || (!std::isalnum(static_cast<unsigned char>(l[pos - 1])) &&
                       l[pos - 1] != '_');
      const std::size_t after = pos + 3;
      const bool word_end =
          after >= l.size() ||
          (!std::isalnum(static_cast<unsigned char>(l[after])) &&
           l[after] != '_');
      if (!word_start || !word_end) continue;
      std::size_t p = after;
      std::size_t pl = li;
      auto cur = [&]() -> const std::string& { return code[pl]; };
      auto advance = [&]() -> bool {
        ++p;
        while (pl < code.size() && p >= cur().size()) {
          ++pl;
          p = 0;
          if (pl - li > 4) return false;  // header spanning >5 lines: give up
        }
        return pl < code.size();
      };
      while (pl < code.size() && (p >= cur().size() ||
             std::isspace(static_cast<unsigned char>(cur()[p])))) {
        if (p < cur().size() &&
            !std::isspace(static_cast<unsigned char>(cur()[p])))
          break;
        if (!advance()) break;
      }
      if (pl >= code.size() || p >= cur().size() || cur()[p] != '(') continue;
      // Collect the parenthesized header.
      int depth = 0;
      std::string header;
      std::size_t close_line = pl, close_pos = p;
      bool closed = false;
      while (pl < code.size()) {
        const char c = cur()[p];
        if (c == '(') ++depth;
        if (c == ')') {
          --depth;
          if (depth == 0) {
            close_line = pl;
            close_pos = p;
            closed = true;
            break;
          }
        }
        header += c;
        if (!advance()) break;
      }
      if (!closed) continue;
      header += '\n';
      // Range-for: a top-level ':' not part of '::'.
      std::size_t colon = std::string::npos;
      int d2 = 0;
      for (std::size_t i = 1; i + 1 < header.size(); ++i) {
        const char c = header[i];
        if (c == '(' || c == '<' || c == '[') ++d2;
        if (c == ')' || c == '>' || c == ']') --d2;
        if (c == ':' && d2 == 0 && header[i - 1] != ':' &&
            header[i + 1] != ':') {
          colon = i;
          break;
        }
      }
      if (colon == std::string::npos) continue;
      out.push_back({li, close_line, close_pos,
                     iterable_name(header.substr(colon + 1))});
    }
  }
  return out;
}

/// Read a file as lines (CRLF-tolerant) and produce its stripped twin.
bool load_source(const std::string& path, std::vector<std::string>& raw,
                 std::vector<std::string>& code) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  raw.clear();
  for (std::string line; std::getline(in, line);) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    raw.push_back(line);
  }
  code = strip_source(raw);
  return true;
}

void scan_file(const std::string& display_path, const Options& opt,
               std::vector<Finding>& findings, std::size_t& io_errors) {
  std::vector<std::string> raw, code;
  if (!load_source(display_path, raw, code)) {
    std::cerr << "dlint: cannot read " << display_path << "\n";
    ++io_errors;
    return;
  }
  const auto allows = collect_allows(display_path, raw, code, findings);
  const std::string npath = normalize(display_path);

  auto report = [&](std::size_t line_idx, const char* rule,
                    const std::string& message) {
    if (allowed(allows, line_idx, rule)) return;
    findings.push_back({display_path, line_idx + 1, rule, message});
  };

  // ---- raw-rng ----------------------------------------------------------
  if (npath.find("src/util/random.") == std::string::npos) {
    static const std::regex rng_re(
        R"(\b(rand|srand|rand_r|drand48)\s*\(|std::random_device|std::mt19937|std::minstd_rand|std::default_random_engine)");
    for (std::size_t i = 0; i < code.size(); ++i)
      if (std::regex_search(code[i], rng_re))
        report(i, "raw-rng",
               "raw RNG; all randomness must come from util::Xoshiro256 / "
               "util::derive_seed (src/util/random.*)");
  }

  // ---- wall-clock -------------------------------------------------------
  if (npath.find("src/util/timer.hpp") == std::string::npos &&
      npath.find("src/obs/") == std::string::npos) {
    static const std::regex clock_re(
        R"(\btime\s*\(|std::chrono::system_clock|\bgettimeofday\s*\(|\blocaltime\s*\(|\bgmtime\s*\()");
    for (std::size_t i = 0; i < code.size(); ++i)
      if (std::regex_search(code[i], clock_re))
        report(i, "wall-clock",
               "wall-clock time is a hidden input; use util::Timer "
               "(steady_clock) or keep it in src/obs");
  }

  // ---- raw-mutex-lock ---------------------------------------------------
  {
    static const std::regex lock_re(R"((\.|->)\s*(lock|unlock)\s*\(\s*\))");
    for (std::size_t i = 0; i < code.size(); ++i)
      if (std::regex_search(code[i], lock_re))
        report(i, "raw-mutex-lock",
               "manual lock()/unlock(); use a scoped guard "
               "(util::MutexLock / std::lock_guard) — a throw between the "
               "pair leaks the lock");
  }

  // ---- sleep-sync -------------------------------------------------------
  // A sleep that stands in for synchronization hides a race behind timing:
  // it works on the dev box and flakes under load. Real code waits on a
  // condition variable, future, or poll-with-deadline; the only sanctioned
  // sleeps are fault-injection stalls (deliberately wasting time IS the
  // feature) and timer tests that need wall time to pass.
  {
    static const std::regex sleep_re(
        R"(std::this_thread::sleep_(for|until)\b|\busleep\s*\(|\bnanosleep\s*\()");
    for (std::size_t i = 0; i < code.size(); ++i)
      if (std::regex_search(code[i], sleep_re))
        report(i, "sleep-sync",
               "sleep as a synchronization tool; wait on a cv/future or "
               "poll with a deadline — if this is a fault-injection stall "
               "or a timer test, justify with dlint:allow(sleep-sync)");
  }

  // ---- unordered-iter & float-accum-order -------------------------------
  const std::vector<std::string> names = unordered_names(code);
  if (!names.empty()) {
    const bool order_sensitive =
        std::any_of(opt.order_dirs.begin(), opt.order_dirs.end(),
                    [&](const std::string& d) {
                      return path_contains_dir(npath, d);
                    });
    const auto tracked = [&](const std::string& n) {
      return std::find(names.begin(), names.end(), n) != names.end();
    };

    for (const RangeFor& rf : find_range_fors(code)) {
      if (rf.iterable.empty() || !tracked(rf.iterable)) continue;
      if (order_sensitive)
        report(rf.header_line, "unordered-iter",
               "hash-order iteration over unordered container '" +
                   rf.iterable +
                   "'; use util::sorted_keys/sorted_elems or justify with "
                   "dlint:allow(unordered-iter)");
      const auto [first, last] =
          loop_body_range(code, rf.close_line, rf.close_pos);
      for (std::size_t li = first; li <= last && li < code.size(); ++li) {
        const std::string& l = code[li];
        for (std::size_t p = 0; (p = l.find("+=", p)) != std::string::npos;
             p += 2) {
          // Skip ++ and compound tokens that merely contain "+=".
          if (p > 0 && (l[p - 1] == '+' || l[p - 1] == '<' || l[p - 1] == '>'))
            continue;
          report(li, "float-accum-order",
                 "accumulation inside a loop over unordered container '" +
                     rf.iterable +
                     "' runs in hash order; sort the keys first");
          break;
        }
      }
    }

    // Iterator-style loops: for (auto it = m.begin(); ...)
    if (order_sensitive) {
      for (std::size_t i = 0; i < code.size(); ++i) {
        const std::string& l = code[i];
        const auto fpos = l.find("for");
        if (fpos == std::string::npos) continue;
        static const std::regex it_re(R"((\w+)\s*\.\s*c?begin\s*\(\s*\))");
        std::smatch m;
        std::string tail = l.substr(fpos);
        if (std::regex_search(tail, m, it_re) && tracked(m[1]))
          report(i, "unordered-iter",
                 "hash-order iterator loop over unordered container '" +
                     std::string(m[1]) + "'");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// lock-order pass (annotation-aware, whole-scan)
// ---------------------------------------------------------------------------
//
// Builds one global held -> acquired graph from every scoped-guard
// construction (util::MutexLock, std::lock_guard/unique_lock/scoped_lock,
// plus any DI_SCOPED_CAPABILITY type or function carrying DI_ACQUIRE) and
// fails on cycles — the static complement of dcheck's runtime lock-order
// detector (DESIGN.md §16). Token-level, so the graph only sees lexical
// nesting within one function plus one interprocedural hop through
// DI_ACQUIRE-annotated methods; that is exactly the set of orderings a
// reviewer can check locally, which is the point of the rule.
//
// Lock identity: members (trailing '_') are qualified by their class
// (class-decl context in headers, `Class::method` definitions in .cpp
// files); everything else is file-qualified, so same-named locals in
// different files never merge into a false cycle.
//
// Sanctioned exception: a guard class whose declaration carries
// `dlint:ordered-pair(LockType)` (e.g. core::ModulePairGuard) promises an
// internal total order over same-type locks; its acquisitions are exempt.
// A single site can also be excluded with dlint:allow(lock-order).

struct LockOrderEdge {
  std::string file;
  std::size_t line = 0;
  std::string held, acquired;
};

struct LockOrderGraph {
  std::set<std::string> guard_types{"MutexLock", "lock_guard", "unique_lock",
                                    "scoped_lock", "shared_lock"};
  std::set<std::string> sanctioned;  ///< guard types with an ordered-pair marker
  /// DI_ACQUIRE-annotated member functions: name -> fully qualified locks.
  std::map<std::string, std::vector<std::string>> acquire_methods;
  std::map<std::pair<std::string, std::string>, LockOrderEdge> edges;
};

std::string file_stem(const std::string& path) {
  return fs::path(path).filename().string();
}

std::string canon_lock(std::string expr, const std::string& cls,
                       const std::string& stem) {
  std::string s;
  int bracket = 0;
  for (char c : expr) {
    if (std::isspace(static_cast<unsigned char>(c))) continue;
    if (c == '[') {
      if (bracket++ == 0) s += "[]";
      continue;
    }
    if (c == ']') {
      if (bracket > 0) --bracket;
      continue;
    }
    if (bracket == 0) s += c;
  }
  while (!s.empty() && (s.front() == '*' || s.front() == '&')) s.erase(0, 1);
  if (s.rfind("this->", 0) == 0) s.erase(0, 6);
  const bool bare = !s.empty() &&
                    std::all_of(s.begin(), s.end(), [](unsigned char c) {
                      return std::isalnum(c) || c == '_';
                    });
  if (bare && s.back() == '_' && !cls.empty()) return cls + "::" + s;
  return stem + "::" + s;
}

/// First balanced `(...)` argument list starting at `line[open]`; empty when
/// the parenthesis does not close on this line (multi-line guard headers are
/// out of scope for a token-level pass).
std::vector<std::string> ctor_args(const std::string& line, std::size_t open) {
  std::vector<std::string> args;
  if (open >= line.size() || (line[open] != '(' && line[open] != '{'))
    return args;
  const char close = line[open] == '(' ? ')' : '}';
  int depth = 0;
  std::string cur;
  for (std::size_t i = open; i < line.size(); ++i) {
    const char c = line[i];
    if (c == '(' || c == '{' || c == '<' || c == '[') ++depth;
    if (c == ')' || c == '}' || c == '>' || c == ']') {
      --depth;
      if (depth == 0 && c == close) {
        if (!is_blank(cur)) args.push_back(cur);
        return args;
      }
    }
    if (depth == 1 && c == ',') {
      args.push_back(cur);
      cur.clear();
    } else if (depth >= 1 && !(depth == 1 && (c == '(' || c == '{'))) {
      cur += c;
    }
  }
  return {};
}

/// Pass 1: guard-type and annotation harvest for one file.
void lock_order_collect(const std::string& file,
                        const std::vector<std::string>& raw,
                        const std::vector<std::string>& code,
                        LockOrderGraph& g) {
  static const std::regex pair_re(R"(dlint:ordered-pair\(([\w:]+)\))");
  static const std::regex scoped_cap_re(
      R"(\b(?:class|struct)\s+DI_SCOPED_CAPABILITY\s+(\w+))");
  static const std::regex class_re(
      R"(\b(?:class|struct)\s+(?:DI_\w+\s+)*(\w+))");
  static const std::regex acquire_re(
      R"(\b(\w+)\s*\(([^()]*)\)\s*(?:const\s*)?DI_ACQUIRE\s*\(\s*([\w]*)\s*\))");
  std::string cls;  // innermost class decl seen so far (declaration order)
  for (std::size_t i = 0; i < code.size(); ++i) {
    std::smatch m;
    if (std::regex_search(code[i], m, class_re)) cls = m[1];
    if (std::regex_search(code[i], m, scoped_cap_re)) g.guard_types.insert(m[1]);
    if (std::regex_search(raw[i], m, pair_re)) {
      // The marker sanctions the guard class it documents: the next
      // class/struct declaration within a few lines.
      for (std::size_t j = i; j < code.size() && j < i + 6; ++j) {
        std::smatch cm;
        if (std::regex_search(code[j], cm, class_re)) {
          g.sanctioned.insert(cm[1]);
          g.guard_types.insert(cm[1]);
          break;
        }
      }
    }
    if (std::regex_search(code[i], m, acquire_re)) {
      const std::string fn = m[1], params = m[2], lock = m[3];
      if (lock.empty()) continue;  // DI_ACQUIRE() on a guard primitive
      const std::regex param_word("\\b" + lock + "\\b");
      if (std::regex_search(params, param_word)) {
        // Acquires its own parameter: an RAII guard shape (e.g. MutexLock).
        g.guard_types.insert(fn);
      } else {
        // Member function acquiring a member lock: one interprocedural hop.
        g.acquire_methods[fn].push_back(
            canon_lock(lock, cls, file_stem(file)));
      }
    }
  }
}

/// Pass 2: edge construction for one file.
void lock_order_edges(const std::string& file,
                      const std::vector<std::string>& raw,
                      const std::vector<std::string>& code, LockOrderGraph& g) {
  // collect_allows also validates marker names; scan_file already reported
  // those, so diagnostics from this second parse are dropped.
  std::vector<Finding> ignored;
  const auto allows = collect_allows(file, raw, code, ignored);
  const std::string stem = file_stem(file);

  std::string guard_alt;
  for (const auto& t : g.guard_types)
    guard_alt += (guard_alt.empty() ? "" : "|") + t;
  const std::regex guard_re("\\b(" + guard_alt +
                            ")(?:\\s*<[^;{}()]*>)?\\s+\\w+\\s*([({])");
  static const std::regex class_re(
      R"(\b(?:class|struct)\s+(?:DI_\w+\s+)*(\w+))");
  static const std::regex impl_re(R"(\b([A-Z]\w*)::~?\w+\s*\()");

  struct Acq {
    std::string lock;
    int depth;
  };
  struct ClassCtx {
    std::string name;
    int depth;
  };
  std::vector<Acq> held;
  std::vector<ClassCtx> classes;
  std::string pending_class, impl_class;
  int depth = 0;

  const auto context_class = [&]() -> std::string {
    if (!classes.empty()) return classes.back().name;
    return impl_class;
  };
  const auto add_acquisition = [&](const std::string& lock, std::size_t li) {
    if (allowed(allows, li, "lock-order")) return;
    for (const Acq& h : held) {
      const auto key = std::make_pair(h.lock, lock);
      if (g.edges.count(key) == 0)
        g.edges[key] = {file, li + 1, h.lock, lock};
    }
    held.push_back({lock, depth});
  };

  for (std::size_t li = 0; li < code.size(); ++li) {
    const std::string& l = code[li];

    // Gather positioned events, then replay them interleaved with braces.
    struct Event {
      std::size_t pos;
      int kind;  // 0 class decl, 1 guard, 2 annotated call
      std::string name;
      std::size_t open = 0;  // guard: position of its '(' / '{'
    };
    std::vector<Event> events;
    for (std::sregex_iterator it(l.begin(), l.end(), class_re), end; it != end;
         ++it)
      events.push_back({static_cast<std::size_t>(it->position(0)), 0,
                        (*it)[1], 0});
    for (std::sregex_iterator it(l.begin(), l.end(), guard_re), end; it != end;
         ++it)
      events.push_back({static_cast<std::size_t>(it->position(0)), 1,
                        (*it)[1],
                        static_cast<std::size_t>(it->position(2))});
    if (!g.acquire_methods.empty()) {
      static const std::regex call_re(R"(\b(\w+)\s*\()");
      for (std::sregex_iterator it(l.begin(), l.end(), call_re), end;
           it != end; ++it)
        if (g.acquire_methods.count((*it)[1]) != 0)
          events.push_back({static_cast<std::size_t>(it->position(0)), 2,
                            (*it)[1], 0});
    }
    std::sort(events.begin(), events.end(),
              [](const Event& a, const Event& b) { return a.pos < b.pos; });

    std::smatch m;
    if (depth <= 1 && std::regex_search(l, m, impl_re) && held.empty() &&
        classes.empty()) {
      // `Ret Class::method(...)` at namespace level: .cpp member context.
      impl_class = m[1];
    }

    std::size_t next_event = 0;
    for (std::size_t i = 0; i <= l.size(); ++i) {
      while (next_event < events.size() && events[next_event].pos == i) {
        const Event& e = events[next_event++];
        if (e.kind == 0) {
          pending_class = e.name;
        } else if (e.kind == 1 && g.sanctioned.count(e.name) == 0) {
          const std::string cls = context_class();
          const auto args = ctor_args(l, e.open);
          for (std::size_t a = 0; a < args.size(); ++a) {
            // std:: tag arguments (adopt_lock, defer_lock...) are not locks,
            // and std guards only take the lockable first.
            if (a > 0 && (e.name != "scoped_lock" || args[a].find("std::") !=
                                                         std::string::npos))
              continue;
            add_acquisition(canon_lock(args[a], cls, stem), li);
          }
        } else if (e.kind == 2) {
          for (const std::string& lock : g.acquire_methods.at(e.name)) {
            if (allowed(allows, li, "lock-order")) continue;
            for (const Acq& h : held) {
              const auto key = std::make_pair(h.lock, lock);
              if (g.edges.count(key) == 0)
                g.edges[key] = {file, li + 1, h.lock, lock};
            }
          }
        }
      }
      if (i == l.size()) break;
      const char c = l[i];
      if (c == '{') {
        ++depth;
        if (!pending_class.empty()) {
          classes.push_back({pending_class, depth});
          pending_class.clear();
        }
      } else if (c == '}') {
        --depth;
        while (!held.empty() && held.back().depth > depth) held.pop_back();
        while (!classes.empty() && classes.back().depth > depth)
          classes.pop_back();
      } else if (c == ';' || c == ')' || c == '>') {
        pending_class.clear();  // forward decl / template parameter
      }
    }
  }
}

/// Cycle detection + reporting over the merged graph.
void lock_order_report(const LockOrderGraph& g, std::vector<Finding>& findings) {
  // adjacency
  std::map<std::string, std::vector<std::string>> adj;
  for (const auto& [key, e] : g.edges) adj[key.first].push_back(key.second);

  const auto reaches = [&](const std::string& from, const std::string& to) {
    std::vector<std::string> stack{from};
    std::set<std::string> seen{from};
    while (!stack.empty()) {
      const std::string cur = stack.back();
      stack.pop_back();
      const auto it = adj.find(cur);
      if (it == adj.end()) continue;
      for (const auto& n : it->second) {
        if (n == to) return true;
        if (seen.insert(n).second) stack.push_back(n);
      }
    }
    return false;
  };

  // An edge participates in a cycle iff its head reaches its tail. Group all
  // cycle edges into one finding per weakly-connected cluster so the report
  // names every acquisition site of the inversion at once.
  std::vector<const LockOrderEdge*> cyclic;
  for (const auto& [key, e] : g.edges)
    if (key.first == key.second || reaches(key.second, key.first))
      cyclic.push_back(&e);
  if (cyclic.empty()) return;

  std::ostringstream os;
  os << "lock acquisition order is cyclic; every order-reversing site:";
  for (const LockOrderEdge* e : cyclic)
    os << "\n  " << e->file << ":" << e->line << ": acquired " << e->acquired
       << " while holding " << e->held;
  os << "\n  (a guard class enforcing an internal total order can be "
        "sanctioned with dlint:ordered-pair(LockType))";
  findings.push_back({cyclic.front()->file, cyclic.front()->line, "lock-order",
                      os.str()});
}

void lock_order_pass(const std::vector<std::string>& files,
                     std::vector<Finding>& findings) {
  LockOrderGraph g;
  std::vector<std::pair<std::string,
                        std::pair<std::vector<std::string>,
                                  std::vector<std::string>>>> sources;
  for (const auto& f : files) {
    std::vector<std::string> raw, code;
    // Unreadable files were already reported (and counted) by scan_file.
    if (!load_source(f, raw, code)) continue;
    lock_order_collect(f, raw, code, g);
    sources.push_back({f, {std::move(raw), std::move(code)}});
  }
  for (const auto& [f, rc] : sources)
    lock_order_edges(f, rc.first, rc.second, g);
  lock_order_report(g, findings);
}

void collect_paths(const fs::path& p, std::vector<std::string>& files,
                   std::size_t& io_errors) {
  std::error_code ec;
  if (fs::is_directory(p, ec)) {
    std::vector<std::string> batch;
    for (auto it = fs::recursive_directory_iterator(
             p, fs::directory_options::skip_permission_denied, ec);
         it != fs::recursive_directory_iterator(); ++it) {
      if (!it->is_regular_file(ec)) continue;
      const std::string ext = it->path().extension().string();
      if (ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc" ||
          ext == ".cxx")
        batch.push_back(it->path().string());
    }
    std::sort(batch.begin(), batch.end());  // deterministic scan order
    files.insert(files.end(), batch.begin(), batch.end());
  } else if (fs::exists(p, ec)) {
    files.push_back(p.string());
  } else {
    std::cerr << "dlint: no such path: " << p.string() << "\n";
    ++io_errors;
  }
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

int usage() {
  std::cerr
      << "usage: dlint [--json] [--root DIR] [--order-dirs a,b,...] "
         "[--list-rules] <file|dir>...\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      opt.json = true;
    } else if (arg == "--list-rules") {
      opt.list_rules = true;
    } else if (arg == "--root") {
      if (++i >= argc) return usage();
      opt.root = argv[i];
    } else if (arg == "--order-dirs") {
      if (++i >= argc) return usage();
      opt.order_dirs.clear();
      std::stringstream ss(argv[i]);
      for (std::string d; std::getline(ss, d, ',');)
        if (!d.empty()) opt.order_dirs.push_back(normalize(d));
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "dlint: unknown flag " << arg << "\n";
      return usage();
    } else {
      opt.paths.push_back(arg);
    }
  }
  if (opt.list_rules) {
    for (const auto& r : kRuleCatalog)
      std::cout << r[0] << "\t" << r[1] << "\n";
    return 0;
  }
  if (opt.paths.empty()) return usage();

  std::vector<std::string> files;
  std::size_t io_errors = 0;
  for (const auto& p : opt.paths) {
    fs::path fp(p);
    if (!opt.root.empty() && fp.is_relative()) fp = fs::path(opt.root) / fp;
    collect_paths(fp, files, io_errors);
  }

  std::vector<Finding> findings;
  for (const auto& f : files) scan_file(f, opt, findings, io_errors);
  lock_order_pass(files, findings);

  if (opt.json) {
    std::cout << "{\"version\":1,\"files_scanned\":" << files.size()
              << ",\"findings\":[";
    for (std::size_t i = 0; i < findings.size(); ++i) {
      const Finding& f = findings[i];
      std::cout << (i ? "," : "") << "{\"file\":\"" << json_escape(f.file)
                << "\",\"line\":" << f.line << ",\"rule\":\"" << f.rule
                << "\",\"message\":\"" << json_escape(f.message) << "\"}";
    }
    std::cout << "],\"count\":" << findings.size() << "}\n";
  } else {
    for (const Finding& f : findings)
      std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
                << f.message << "\n";
    std::cerr << "dlint: " << findings.size() << " finding(s), "
              << files.size() << " file(s) scanned\n";
  }
  if (io_errors > 0) return 2;
  return findings.empty() ? 0 : 1;
}
