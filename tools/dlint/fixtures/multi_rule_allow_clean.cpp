// Must NOT fire: each line below trips two rules at once and a single
// comma-separated allow marker suppresses both — once from a comment block
// above, once from a same-line comment (with spaces around the comma).
#include <chrono>
#include <cstdlib>
#include <thread>
#include <unistd.h>

void jittered_stall() {
  // dlint:allow(sleep-sync,raw-rng): multi-rule marker, block-above form
  std::this_thread::sleep_for(std::chrono::microseconds(rand() % 100));
}

void jittered_stall_again() {
  usleep(rand() % 100);  // dlint:allow(raw-rng, sleep-sync): same-line form
}
