// Must NOT fire: every trigger pattern below sits inside a raw string
// literal — plain, encoding-prefixed (u8R/uR/UR/LR), custom-delimiter, and
// multi-line forms the stripper has to lex exactly. A naive `R"(`-only
// matcher leaks the prefixed ones into code and fires raw-rng/sleep-sync.
const char* plain = R"(rand() and std::mt19937 live here)";
const char* delim = R"x(time( gettimeofday( and a fake close )" inside)x";
const char* utf8 = u8R"(m.lock(); m.unlock();)";
const char16_t* utf16 = uR"(std::this_thread::sleep_for(1s))";
const char32_t* utf32 = UR"y(std::chrono::system_clock::now())y";
const wchar_t* wide = LR"(usleep(10); nanosleep(&ts, nullptr);)";
const char* multi = R"ml(
  srand(42);
  std::this_thread::sleep_for(std::chrono::seconds(1));
)ml";
// An identifier merely ending in R must not start a raw string: the VECTOR
// in `VECTOR"(text)"` is a macro, and the quoted part is an ordinary string.
#define VECTOR
const char* not_raw = VECTOR"(this is a normal string, not raw)";
int after = 0;  // still code: stripping must resynchronize after each literal
