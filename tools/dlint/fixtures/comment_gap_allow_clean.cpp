// Must NOT fire: the allow marker sits in a comment block separated from
// its code line by more prose and blank lines; the attachment must roll
// forward until the next line that actually carries code.
#include <cstdlib>

// dlint:allow(raw-rng): blank-line roll-forward fixture
//
// More prose in the same comment block, then an entirely blank line:

static int seeded = rand();
