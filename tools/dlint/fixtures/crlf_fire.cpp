// Must fire: raw-rng on the last line even though every line ends in CRLF;
// the allowed sleep above it must stay silent (marker parsing and splice
// detection both have to survive the \r).
#include <chrono>
#include <cstdlib>
#include <thread>
// dlint:allow(sleep-sync): CRLF marker fixture
void f() { std::this_thread::sleep_for(std::chrono::seconds(1)); }
static int r = rand();
