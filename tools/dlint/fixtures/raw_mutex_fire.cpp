// Must-fire (raw-mutex-lock): manual lock()/unlock() pair — a throw between
// them leaks the lock.
#include <mutex>

std::mutex m;
int counter = 0;

void bump() {
  m.lock();
  ++counter;
  m.unlock();
}
