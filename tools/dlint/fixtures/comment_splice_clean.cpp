// Must NOT fire: a backslash splice continues this line comment, so the \
rand() and std::mt19937 on this physical line are still comment text.
const char* spliced = "a string literal with a trailing splice \
rand() inside the continued literal and time( too";
int after_splices = 0;  // code resumes normally after both continuations
