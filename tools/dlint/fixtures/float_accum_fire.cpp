// Must-fire (float-accum-order): `+=` accumulation inside a loop over an
// unordered container. This file is OUTSIDE the order-sensitive dirs, so
// unordered-iter itself stays silent — the accumulation rule applies
// everywhere because hash-order FP reduction is wrong in any directory.
#include <unordered_map>

double total_flow(const std::unordered_map<long, double>& flow) {
  double sum = 0.0;
  for (const auto& [node, f] : flow) {
    sum += f;
  }
  return sum;
}
