// Must-fire (raw-rng): unseeded / ad-hoc randomness outside src/util/random.*.
#include <cstdlib>
#include <random>

int roll() {
  std::random_device rd;
  std::mt19937 gen(rd());
  return static_cast<int>(gen() % 6u) + rand() % 6;
}
