// Must-not-fire (raw-rng): randomness drawn from the project's seeded RNG.
// Identifiers that merely contain "rand" (operand, random_walk) must not trip
// the word-boundary match.
#include <cstdint>

namespace util {
struct Xoshiro256 {
  explicit Xoshiro256(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next() { return state_ += 0x9e3779b97f4a7c15ull; }
  std::uint64_t state_;
};
}  // namespace util

int roll(std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  const int operand = 6;
  const auto random_walk = rng.next();
  return static_cast<int>(random_walk % operand);
}
