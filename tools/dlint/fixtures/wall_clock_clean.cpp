// Must-not-fire (wall-clock): steady_clock is fine (it measures duration,
// not calendar time), and identifiers like runtime/lifetime must not trip the
// word-boundary match. The phrase "wall time (seconds)" in this comment must
// be stripped before matching.
#include <chrono>

double elapsed(std::chrono::steady_clock::time_point start) {
  const auto now = std::chrono::steady_clock::now();
  const double runtime =
      std::chrono::duration<double>(now - start).count();
  return runtime;
}
