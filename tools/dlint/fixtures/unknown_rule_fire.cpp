// Must fire: unknown-rule — the marker names a rule dlint does not have,
// so it would silently suppress nothing (a typo'd allow is a bug).
// dlint:allow(no-such-rule)
int unsuppressed = 0;
