// Must-fire (wall-clock): wall time read in algorithm code.
#include <chrono>
#include <ctime>

long stamp() {
  const auto now = std::chrono::system_clock::now();
  (void)now;
  return static_cast<long>(time(nullptr));
}
