// Must fire: lock-order — take_ab acquires a then b, take_ba acquires b
// then a; the merged graph has the cycle a -> b -> a and the report must
// name both reversing acquisition sites.
#include <mutex>

std::mutex a;
std::mutex b;

void take_ab() {
  std::lock_guard<std::mutex> la(a);
  std::lock_guard<std::mutex> lb(b);
}

void take_ba() {
  std::lock_guard<std::mutex> lb(b);
  std::lock_guard<std::mutex> la(a);
}
