// Must fire: sleep-sync on the sleep_for, the usleep, and the nanosleep —
// each stands in for synchronization ("surely the worker is done by now").
#include <chrono>
#include <ctime>
#include <thread>
#include <unistd.h>

extern bool worker_done;

void wait_for_worker_badly() {
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  while (!worker_done) usleep(1000);
  timespec ts{0, 1000000};
  nanosleep(&ts, nullptr);
}
