// Must-fire: hash-order range-for over an unordered_map in an
// order-sensitive directory (simulated via --order-dirs order_sensitive).
#include <unordered_map>

double sum_values(const std::unordered_map<int, double>& weights) {
  double total = 0.0;
  for (const auto& [key, value] : weights) {
    total += value;
  }
  return total;
}
