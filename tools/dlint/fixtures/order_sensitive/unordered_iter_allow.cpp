// Must-not-fire: the same loops as unordered_iter_fire.cpp, each suppressed
// with a justified dlint:allow marker (same-line and comment-block-above).
#include <unordered_map>
#include <unordered_set>

int count_keys(const std::unordered_map<int, double>& weights) {
  int n = 0;
  for (const auto& [key, value] : weights) ++n;  // dlint:allow(unordered-iter): keys-only count, order cannot escape. dlint:allow(float-accum-order): integer count.
  return n;
}

bool contains_even(const std::unordered_set<int>& members) {
  // dlint:allow(unordered-iter): early-exit membership scan; the answer is
  // independent of visit order.
  for (int m : members)
    if (m % 2 == 0) return true;
  return false;
}
