// Must-not-fire: iteration over ordered containers only, plus comment/string
// stripping checks — the commented-out loop and the string literal below must
// not trigger any rule.
#include <map>
#include <string>
#include <vector>

double sum_values_sorted(const std::map<int, double>& weights) {
  double total = 0.0;
  for (const auto& [key, value] : weights) total += value;
  return total;
}

double sum_vector(const std::vector<double>& values) {
  double total = 0.0;
  for (double v : values) total += v;
  return total;
}

// for (const auto& [k, v] : some_unordered_map) total += v;   <- comment
const char* kDoc = "for (auto x : some_unordered_map) mutex.lock();";
