// Must NOT fire: PairGuard carries the ordered-pair marker promising an
// internal total order (e.g. address order) over SpinLocks, so its callers
// may pass the pair in either order — the RelaxMap module-pair shape.
struct SpinLock {};

// dlint:ordered-pair(SpinLock)
class PairGuard {
 public:
  PairGuard(SpinLock& x, SpinLock& y);
  ~PairGuard();
};

SpinLock pa;
SpinLock pb;

void merge_forward() { PairGuard guard(pa, pb); }
void merge_backward() { PairGuard guard(pb, pa); }
