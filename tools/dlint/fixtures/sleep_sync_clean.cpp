// Must NOT fire: sleep mentions live in comments and string literals, and
// the one real sleep is a justified fault-injection stall.
#include <chrono>
#include <thread>

// A comment saying std::this_thread::sleep_for(1s) or usleep(10) is fine.
const char* kDoc = "docs may mention std::this_thread::sleep_for or usleep(";

extern bool aborted();

void stall_forever_fixture() {
  while (!aborted())
    // dlint:allow(sleep-sync): fault-injection stall — wasting time is the
    // point of this fixture
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
}
