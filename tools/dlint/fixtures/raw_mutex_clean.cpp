// Must-not-fire (raw-mutex-lock): scoped guards, plus calls that merely
// resemble lock() — try_lock(), lock_shared-style names, and a lock() inside
// a string literal.
#include <mutex>

std::mutex m;
int counter = 0;

void bump() {
  std::lock_guard<std::mutex> guard(m);
  ++counter;
}

bool try_bump() {
  if (!m.try_lock()) return false;
  ++counter;
  m.unlock();  // dlint:allow(raw-mutex-lock): paired with try_lock above; no throwing code between.
  return true;
}

const char* kHint = "call m.lock() before touching counter";
