// Must-not-fire (float-accum-order): accumulation over ordered containers,
// and an unordered loop with no accumulation inside it.
#include <unordered_set>
#include <vector>

double total(const std::vector<double>& values) {
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum;
}

bool any_negative(const std::unordered_set<int>& xs) {
  for (int x : xs)
    if (x < 0) return true;
  return false;
}
