// Must NOT fire: every path agrees on a-before-b, and the one deliberate
// inversion carries the single-site escape.
#include <mutex>

std::mutex a;
std::mutex b;

void first_path() {
  std::lock_guard<std::mutex> la(a);
  std::lock_guard<std::mutex> lb(b);
}

void second_path() {
  std::lock_guard<std::mutex> la(a);
  {
    std::lock_guard<std::mutex> lb(b);
  }
  // Re-acquiring b after releasing it is still a-before-b, not a cycle.
  std::lock_guard<std::mutex> lb2(b);
}

void inverted_but_escaped() {
  std::lock_guard<std::mutex> lb(b);
  // dlint:allow(lock-order): fixture for the single-site escape
  std::lock_guard<std::mutex> la(a);
}
