// benchdiff — compare fresh bench JSON artifacts against the checked-in
// baselines (bench_results/BENCH_<name>.json) with per-metric tolerances.
//
//   benchdiff <baseline> <fresh> [--strict]
//
// <baseline>/<fresh> are either two BENCH_*.json files or two directories
// (every BENCH_*.json present in both is compared). Rows are matched by
// index; string fields (dataset, engine, …) must agree or the row is flagged
// as incomparable. Numeric fields are compared under a tolerance picked from
// the metric name: wall-clock and latency metrics get a generous relative
// band (they are machine- and load-dependent), percentages an absolute band,
// and everything else — counters, rounds, codelengths — a tight relative
// band, because the algorithm is deterministic and those should reproduce
// exactly on any machine.
//
// The default exit status is 0 even when metrics drift: the CI quick gate
// runs this as an *informational* leg (a slow machine must not fail the
// build). --strict turns drift into exit 1 for release checklists.
#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

namespace {

// ---- minimal JSON reader (objects, arrays, numbers, strings) -------------

struct Json {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<Json> array;
  std::map<std::string, Json> object;  // sorted; bench rows are flat
};

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  bool parse(Json* out) { return value(out) && (skip_ws(), pos_ == s_.size()); }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0)
      ++pos_;
  }
  bool literal(const char* word) {
    const std::size_t n = std::strlen(word);
    if (s_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }
  bool string(std::string* out) {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\' && pos_ < s_.size()) {
        c = s_[pos_++];
        if (c == 'n') c = '\n';
        else if (c == 't') c = '\t';
        // \", \\, \/ fall through as themselves; exotic escapes are not
        // produced by the sinks this tool reads.
      }
      out->push_back(c);
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool value(Json* out) {
    skip_ws();
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == '{') {
      ++pos_;
      out->type = Json::Type::kObject;
      skip_ws();
      if (pos_ < s_.size() && s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      while (true) {
        skip_ws();
        std::string key;
        if (!string(&key)) return false;
        skip_ws();
        if (pos_ >= s_.size() || s_[pos_++] != ':') return false;
        if (!value(&out->object[key])) return false;
        skip_ws();
        if (pos_ >= s_.size()) return false;
        if (s_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (s_[pos_] == '}') {
          ++pos_;
          return true;
        }
        return false;
      }
    }
    if (c == '[') {
      ++pos_;
      out->type = Json::Type::kArray;
      skip_ws();
      if (pos_ < s_.size() && s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      while (true) {
        out->array.emplace_back();
        if (!value(&out->array.back())) return false;
        skip_ws();
        if (pos_ >= s_.size()) return false;
        if (s_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (s_[pos_] == ']') {
          ++pos_;
          return true;
        }
        return false;
      }
    }
    if (c == '"') {
      out->type = Json::Type::kString;
      return string(&out->str);
    }
    if (c == 't') {
      out->type = Json::Type::kBool;
      out->boolean = true;
      return literal("true");
    }
    if (c == 'f') {
      out->type = Json::Type::kBool;
      out->boolean = false;
      return literal("false");
    }
    if (c == 'n') {
      out->type = Json::Type::kNull;
      return literal("null");
    }
    // number
    const char* start = s_.c_str() + pos_;
    char* end = nullptr;
    out->number = std::strtod(start, &end);
    if (end == start) return false;
    out->type = Json::Type::kNumber;
    pos_ += static_cast<std::size_t>(end - start);
    return true;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

bool load_json(const std::filesystem::path& path, Json* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  return Parser(text).parse(out);
}

// ---- tolerance model -----------------------------------------------------

struct Tolerance {
  double rel = 0;  ///< |fresh − base| ≤ rel · |base| passes
  double abs = 0;  ///< … or |fresh − base| ≤ abs
  const char* why = "";
};

bool contains(const std::string& name, const char* needle) {
  return name.find(needle) != std::string::npos;
}

Tolerance tolerance_for(const std::string& metric) {
  // Wall-clock and latency numbers move with the machine and its load; they
  // are compared loosely and reported, never trusted to the percent.
  if (contains(metric, "_ms") || contains(metric, "_us") ||
      contains(metric, "wall") || contains(metric, "seconds"))
    return {0.60, 10.0, "timing"};
  if (contains(metric, "speedup")) return {0.50, 0.5, "timing-derived"};
  if (contains(metric, "_pct")) return {0.0, 5.0, "percentage"};
  // Deterministic outputs: codelengths, move/eval counters, round counts.
  // These reproduce bit-for-bit on any machine, so drift here is a real
  // behavior change, not noise.
  if (contains(metric, "final_L") || contains(metric, "codelength"))
    return {1e-9, 1e-9, "deterministic"};
  return {1e-6, 1e-9, "deterministic"};
}

struct Stats {
  int compared = 0;
  int drifted = 0;
  int incomparable = 0;
};

void diff_bench(const std::string& bench_name, const Json& base,
                const Json& fresh, Stats* stats) {
  const auto bit = base.object.find("rows");
  const auto fit = fresh.object.find("rows");
  if (bit == base.object.end() || fit == fresh.object.end()) {
    std::printf("%-16s rows array missing; skipped\n", bench_name.c_str());
    ++stats->incomparable;
    return;
  }
  const auto& brows = bit->second.array;
  const auto& frows = fit->second.array;
  if (brows.size() != frows.size())
    std::printf("%-16s row count %zu -> %zu (comparing the overlap)\n",
                bench_name.c_str(), brows.size(), frows.size());
  const std::size_t n = std::min(brows.size(), frows.size());
  for (std::size_t i = 0; i < n; ++i) {
    const auto& brow = brows[i].object;
    const auto& frow = frows[i].object;
    // Row identity: every string field must agree, otherwise the benches
    // enumerate different configurations and index-matching is meaningless.
    std::string label;
    bool identity_ok = true;
    for (const auto& [key, bval] : brow) {
      if (bval.type != Json::Type::kString) continue;
      const auto f = frow.find(key);
      if (f == frow.end() || f->second.type != Json::Type::kString ||
          f->second.str != bval.str) {
        identity_ok = false;
        break;
      }
      if (!label.empty()) label += '/';
      label += bval.str;
    }
    if (!identity_ok) {
      std::printf("%-16s row %zu: identity fields differ; skipped\n",
                  bench_name.c_str(), i);
      ++stats->incomparable;
      continue;
    }
    for (const auto& [key, bval] : brow) {
      if (bval.type != Json::Type::kNumber) continue;
      const auto f = frow.find(key);
      if (f == frow.end() || f->second.type != Json::Type::kNumber)
        continue;  // metric added/removed between versions: not drift
      const double b = bval.number;
      const double v = f->second.number;
      const Tolerance tol = tolerance_for(key);
      const double delta = std::fabs(v - b);
      const bool ok = delta <= tol.abs || delta <= tol.rel * std::fabs(b);
      ++stats->compared;
      if (!ok) {
        ++stats->drifted;
        const double pct = b != 0 ? 100.0 * (v - b) / std::fabs(b) : 0.0;
        std::printf("%-16s %-28s %-24s %14.6g -> %-14.6g %+8.2f%%  DRIFT (%s)\n",
                    bench_name.c_str(), label.c_str(), key.c_str(), b, v, pct,
                    tol.why);
      }
    }
  }
}

int usage() {
  std::fprintf(stderr,
               "usage: benchdiff <baseline.json|dir> <fresh.json|dir> "
               "[--strict]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::filesystem::path baseline = argv[1];
  const std::filesystem::path fresh = argv[2];
  bool strict = false;
  for (int i = 3; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--strict")) strict = true;
    else return usage();
  }

  // Pair up the artifacts to compare.
  std::vector<std::pair<std::filesystem::path, std::filesystem::path>> pairs;
  if (std::filesystem::is_directory(baseline)) {
    if (!std::filesystem::is_directory(fresh)) return usage();
    std::vector<std::filesystem::path> names;
    for (const auto& entry : std::filesystem::directory_iterator(baseline)) {
      const auto name = entry.path().filename().string();
      if (name.rfind("BENCH_", 0) == 0 && entry.path().extension() == ".json")
        names.push_back(entry.path().filename());
    }
    std::sort(names.begin(), names.end());
    for (const auto& name : names) {
      if (std::filesystem::exists(fresh / name))
        pairs.emplace_back(baseline / name, fresh / name);
      else
        std::printf("%-16s no fresh artifact; skipped\n",
                    name.string().c_str());
    }
  } else {
    pairs.emplace_back(baseline, fresh);
  }
  if (pairs.empty()) {
    std::printf("benchdiff: nothing to compare\n");
    return 0;
  }

  Stats stats;
  std::printf("%-16s %-28s %-24s %14s    %-14s %8s\n", "bench", "row",
              "metric", "baseline", "fresh", "delta");
  for (const auto& [bpath, fpath] : pairs) {
    Json base, now;
    if (!load_json(bpath, &base) || !load_json(fpath, &now)) {
      std::printf("%-16s unreadable artifact; skipped\n",
                  bpath.filename().string().c_str());
      ++stats.incomparable;
      continue;
    }
    std::string name = bpath.filename().string();
    diff_bench(name, base, now, &stats);
  }
  std::printf("\nbenchdiff: %d metrics compared, %d drifted, %d incomparable%s\n",
              stats.compared, stats.drifted, stats.incomparable,
              strict ? " (strict)" : " (informational)");
  return strict && (stats.drifted > 0 || stats.incomparable > 0) ? 1 : 0;
}
