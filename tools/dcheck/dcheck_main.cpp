// dcheck CLI — explore, validate, and replay the model harnesses.
//
//   dcheck --list
//   dcheck <harness> [--bound N] [--mutate NAME] [--replay SCHED]
//   dcheck --all [--validate] [--bound N] [--max-seconds S] [--json PATH]
//
// --validate runs every selected harness twice: clean (must pass) and with
// its seeded mutation (must fail, with a replayable schedule) — the CI proof
// that each harness can actually catch its target bug class. Exit status is
// 0 only when every selected run met its expectation.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "model.hpp"

namespace {

using dinfomap::dcheck::Harness;
using dinfomap::dcheck::Options;
using dinfomap::dcheck::Result;

struct Cli {
  std::vector<std::string> names;
  bool all = false;
  bool list = false;
  bool validate = false;
  std::string mutate;
  std::string json_path;
  Options opts;
};

int usage(std::ostream& os, int code) {
  os << "usage: dcheck [--list] [--all] [<harness>...]\n"
        "              [--bound N] [--mutate NAME] [--replay SCHEDULE]\n"
        "              [--validate] [--max-schedules N] [--max-seconds S]\n"
        "              [--max-steps N] [--json PATH]\n"
        "  --bound N        max preemptions, explored iteratively 0..N\n"
        "                   (default 3; -1 = unbounded full DFS)\n"
        "  --mutate NAME    enable a seeded mutation for the exploration\n"
        "  --replay SCHED   run exactly one schedule string (one harness)\n"
        "  --validate       run clean (expect pass) + seeded mutation\n"
        "                   (expect fail) for each selected harness\n"
        "  --json PATH      write machine-readable results\n";
  return code;
}

bool parse_cli(int argc, char** argv, Cli& cli, std::string& err) {
  const auto need = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      err = std::string(flag) + " requires a value";
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* v = nullptr;
    try {
      if (arg == "--list") {
        cli.list = true;
      } else if (arg == "--all") {
        cli.all = true;
      } else if (arg == "--validate") {
        cli.validate = true;
      } else if (arg == "--bound") {
        if ((v = need(i, "--bound")) == nullptr) return false;
        cli.opts.max_preemptions = std::stoi(v);
      } else if (arg == "--mutate") {
        if ((v = need(i, "--mutate")) == nullptr) return false;
        cli.mutate = v;
      } else if (arg == "--replay") {
        if ((v = need(i, "--replay")) == nullptr) return false;
        cli.opts.replay = v;
      } else if (arg == "--max-schedules") {
        if ((v = need(i, "--max-schedules")) == nullptr) return false;
        cli.opts.max_schedules = std::stoull(v);
      } else if (arg == "--max-seconds") {
        if ((v = need(i, "--max-seconds")) == nullptr) return false;
        cli.opts.max_seconds = std::stod(v);
      } else if (arg == "--max-steps") {
        if ((v = need(i, "--max-steps")) == nullptr) return false;
        cli.opts.max_steps_per_run = std::stoull(v);
      } else if (arg == "--json") {
        if ((v = need(i, "--json")) == nullptr) return false;
        cli.json_path = v;
      } else if (arg == "--help" || arg == "-h") {
        err = "help";
        return false;
      } else if (!arg.empty() && arg[0] == '-') {
        err = "unknown flag: " + arg;
        return false;
      } else {
        cli.names.push_back(arg);
      }
    } catch (const std::exception&) {
      err = "bad value for " + arg + ": '" + std::string(v ? v : "") + "'";
      return false;
    }
  }
  return true;
}

std::string json_escape(const std::string& s) {
  std::ostringstream os;
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u" << std::hex << static_cast<int>(c) << std::dec;
        } else {
          os << c;
        }
    }
  }
  return os.str();
}

struct RunRecord {
  std::string harness;
  std::string mutation;  ///< empty = clean run
  bool expected_failure = false;
  bool met_expectation = false;
  Result result;
};

void print_result(const RunRecord& rec) {
  const Result& r = rec.result;
  std::cout << "[" << rec.harness
            << (rec.mutation.empty() ? "" : " +" + rec.mutation) << "] "
            << (r.failed ? "FAIL(" + r.kind + ")" : "pass") << "  schedules="
            << r.schedules << " pruned=" << r.pruned << " steps=" << r.steps
            << (r.truncated ? " (truncated)" : "") << "  "
            << static_cast<int>(r.seconds * 1000) << "ms";
  if (rec.expected_failure) {
    std::cout << (rec.met_expectation ? "  [mutation caught]"
                                      : "  [MUTATION NOT CAUGHT]");
  }
  std::cout << "\n";
  if (r.failed) {
    std::cout << "  kind:     " << r.kind << "\n"
              << "  bound:    " << r.failing_bound << "\n"
              << "  schedule: " << r.schedule << "\n";
    std::istringstream detail(r.detail);
    std::string line;
    while (std::getline(detail, line)) std::cout << "  | " << line << "\n";
    if (!r.trace.empty()) {
      std::cout << "  replayed trace (" << r.trace.size() << " steps):\n";
      for (const auto& step : r.trace) std::cout << "    " << step << "\n";
    }
    std::cout << "  replay with: dcheck " << rec.harness
              << (rec.mutation.empty() ? "" : " --mutate " + rec.mutation)
              << " --replay '" << r.schedule << "'\n";
  }
}

void write_json(const std::string& path, const std::vector<RunRecord>& runs,
                bool ok) {
  std::ofstream out(path);
  out << "{\n  \"ok\": " << (ok ? "true" : "false") << ",\n  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const RunRecord& rec = runs[i];
    const Result& r = rec.result;
    out << "    {\"harness\": \"" << json_escape(rec.harness)
        << "\", \"mutation\": \"" << json_escape(rec.mutation)
        << "\", \"failed\": " << (r.failed ? "true" : "false")
        << ", \"expected_failure\": "
        << (rec.expected_failure ? "true" : "false")
        << ", \"met_expectation\": "
        << (rec.met_expectation ? "true" : "false") << ", \"kind\": \""
        << json_escape(r.kind) << "\", \"schedule\": \""
        << json_escape(r.schedule) << "\", \"schedules\": " << r.schedules
        << ", \"pruned\": " << r.pruned << ", \"steps\": " << r.steps
        << ", \"failing_bound\": " << r.failing_bound
        << ", \"truncated\": " << (r.truncated ? "true" : "false")
        << ", \"seconds\": " << r.seconds << "}"
        << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  std::string err;
  if (!parse_cli(argc, argv, cli, err)) {
    if (err == "help") return usage(std::cout, 0);
    std::cerr << "dcheck: " << err << "\n";
    return usage(std::cerr, 2);
  }

  if (cli.list) {
    for (const auto& h : dinfomap::dcheck::harnesses()) {
      std::cout << h.name << "\n  " << h.description << "\n  seeded mutation: "
                << (h.mutation.empty() ? "(none)" : h.mutation) << "\n";
    }
    return 0;
  }

  std::vector<const Harness*> selected;
  if (cli.all || cli.names.empty()) {
    for (const auto& h : dinfomap::dcheck::harnesses()) selected.push_back(&h);
  } else {
    for (const auto& name : cli.names) {
      const Harness* h = dinfomap::dcheck::find_harness(name);
      if (h == nullptr) {
        std::cerr << "dcheck: unknown harness '" << name
                  << "' (see --list)\n";
        return 2;
      }
      selected.push_back(h);
    }
  }
  if (!cli.opts.replay.empty() && selected.size() != 1) {
    std::cerr << "dcheck: --replay needs exactly one harness\n";
    return 2;
  }
  if (cli.validate && (!cli.mutate.empty() || !cli.opts.replay.empty())) {
    std::cerr << "dcheck: --validate excludes --mutate/--replay\n";
    return 2;
  }

  std::vector<RunRecord> runs;
  const auto run_one = [&](const Harness& h, const std::string& mutation,
                           bool expect_failure) {
    Options opts = cli.opts;
    opts.mutation = mutation;
    RunRecord rec;
    rec.harness = h.name;
    rec.mutation = mutation;
    rec.expected_failure = expect_failure;
    rec.result = dinfomap::dcheck::run_harness(h, opts);
    rec.met_expectation = expect_failure
                              ? (rec.result.failed &&
                                 !rec.result.schedule.empty())
                              : !rec.result.failed;
    print_result(rec);
    runs.push_back(std::move(rec));
  };

  for (const Harness* h : selected) {
    if (cli.validate) {
      run_one(*h, "", /*expect_failure=*/false);
      if (!h->mutation.empty()) run_one(*h, h->mutation, /*expect_failure=*/true);
    } else {
      run_one(*h, cli.mutate, /*expect_failure=*/!cli.mutate.empty());
    }
  }

  bool ok = true;
  for (const auto& rec : runs) ok = ok && rec.met_expectation;
  if (!cli.json_path.empty()) write_json(cli.json_path, runs, ok);
  return ok ? 0 : 1;
}
