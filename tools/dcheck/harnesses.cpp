// The shipped model harnesses (DESIGN.md §16). Each drives *real* production
// code — util::ThreadPool, comm::Mailbox, core::ModulePairGuard,
// util::LazyPriorityWorklist — through the scheduler hooks, and each is
// validated by a seeded mutation that re-introduces a known bug class; the
// harness must catch the mutant and pass clean on the unmutated code.
#include "model.hpp"

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "comm/mailbox.hpp"
#include "core/relaxmap_sync.hpp"
#include "util/mutex.hpp"
#include "util/sched_point.hpp"
#include "util/thread_pool.hpp"
#include "util/worklist.hpp"

namespace dinfomap::dcheck {

namespace {

// --- threadpool ------------------------------------------------------------
// Nested dispatch: a slot re-entering run_slots degrades to run_inline on the
// calling thread. The seeded mutation ("threadpool.nested-slot-seconds",
// inside ThreadPool::run_inline) re-introduces the PR 6 bug where the nested
// inline pass recorded per-slot times into slot_seconds_ while the *outer*
// dispatch's workers still owned their entries — a data race the pool fixed
// by not recording times on the nested path.
void threadpool_harness(Context& ctx) {
  util::ThreadPool pool(2);
  std::vector<int> ran(2, 0);
  pool.run_slots([&](int slot) {
    if (slot == 0) pool.run_slots([](int) {});  // nested -> run_inline
    ran[static_cast<std::size_t>(slot)] = 1;
  });
  ctx.check(ran[0] == 1 && ran[1] == 1, "every slot ran exactly once");
}

// --- mailbox ---------------------------------------------------------------
// Multi-consumer channel with (source, tag) matching. Two consumers block on
// different sources; the producer delivers the messages in reverse order and
// a watchdog timed receive must expire (virtual timeout) without stealing
// anything. The seeded mutation ("mailbox.notify-one", inside
// Mailbox::deliver) downgrades notify_all to notify_one: the wakeup can land
// on the non-matching consumer, which re-waits, and the matching one sleeps
// forever next to its queued message — a lost wakeup.
void mailbox_harness(Context& ctx) {
  comm::Mailbox box;
  const auto msg = [](int source) {
    comm::Message m;
    m.source = source;
    m.tag = 7;
    return m;
  };
  int got_a = 0;
  int got_b = 0;
  ctx.spawn("consumer-a", [&] { got_a = box.recv(1, 7).source; });
  ctx.spawn("consumer-b", [&] { got_b = box.recv(2, 7).source; });
  box.deliver(msg(2));
  box.deliver(msg(1));
  const auto stray =
      box.try_recv_for(3, 7, std::chrono::microseconds(1), false);
  ctx.check(!stray.has_value(), "watchdog must time out: no source-3 traffic");
  ctx.join_spawned();
  ctx.check(got_a == 1, "consumer-a received the source-1 message");
  ctx.check(got_b == 2, "consumer-b received the source-2 message");
  ctx.check(box.pending() == 0, "channel drained");
}

// --- relaxmap-pair ---------------------------------------------------------
// RelaxMap move application locks the two affected module SpinLocks in id
// order through ModulePairGuard. The harness-side mutation
// ("relaxmap.unordered-pair") makes the second mover acquire its pair in
// *reverse* id order — the lock-order graph picks up the A→B / B→A inversion
// at preemption bound 0, on a schedule where it does not even deadlock.
void relaxmap_pair_harness(Context& ctx) {
  auto locks = std::make_unique<core::SpinLock[]>(2);
  double stats[2] = {0.0, 0.0};
  const bool reversed =
      util::dcheck::mutation_enabled("relaxmap.unordered-pair");
  const auto mover = [&](bool reverse) {
    core::SpinLock& lo = locks[reverse ? 1 : 0];
    core::SpinLock* hi = &locks[reverse ? 0 : 1];
    core::ModulePairGuard guard(lo, hi);
    DI_SCHED_STORE(&stats[0], "relaxmap.module_stats");
    stats[0] += 1.0;
    DI_SCHED_STORE(&stats[1], "relaxmap.module_stats");
    stats[1] += 1.0;
  };
  ctx.spawn("mover-a", [&] { mover(false); });
  ctx.spawn("mover-b", [&] { mover(reversed); });
  ctx.join_spawned();
  ctx.check(stats[0] == 2.0 && stats[1] == 2.0, "both moves applied");
}

// --- worklist --------------------------------------------------------------
// util::LazyPriorityWorklist is not thread-safe by contract; the async
// engine guards it with the rank's lock. Two pushers activate (one raising a
// shared index's priority — the lazy-deletion requeue path) and a drainer
// pops, all under a util::Mutex; main drains the remainder after the join
// and checks the counter invariants that hold in *every* interleaving. The
// harness-side mutation ("worklist.unguarded-drain") drops the drainer's
// lock, which the DI_SCHED_* markers inside the worklist surface as a data
// race.
void worklist_harness(Context& ctx) {
  util::LazyPriorityWorklist wl;
  util::Mutex mu;
  wl.reset(8);
  const bool unguarded =
      util::dcheck::mutation_enabled("worklist.unguarded-drain");
  std::uint64_t drained = 0;
  ctx.spawn("pusher-a", [&] {
    util::MutexLock lock(mu);
    wl.activate(1, 0.5);
    wl.activate(3, 0.25);
  });
  ctx.spawn("pusher-b", [&] {
    util::MutexLock lock(mu);
    wl.activate(1, 0.75);  // raise: lazy re-push over pusher-a's entry
    wl.activate(5, 0.125);
  });
  ctx.spawn("drainer", [&] {
    std::uint32_t li = 0;
    if (unguarded) {
      if (wl.try_pop(li)) ++drained;
      return;
    }
    util::MutexLock lock(mu);
    if (wl.try_pop(li)) ++drained;
  });
  ctx.join_spawned();
  std::uint32_t li = 0;
  while (wl.try_pop(li)) ++drained;
  const auto& c = wl.counters();
  ctx.check(wl.live() == 0 && wl.empty(), "fully drained");
  ctx.check(drained == c.popped, "every live pop was observed");
  ctx.check(c.popped == c.pushed, "each fresh activation popped exactly once");
  ctx.check(c.pushed + c.requeued == c.popped + c.stale,
            "every heap entry left as live or stale");
  ctx.check(drained >= 3 && drained <= 4,
            "three indices, at most one pop-then-reactivate");
}

}  // namespace

const std::vector<Harness>& harnesses() {
  static const std::vector<Harness> kHarnesses = {
      {"threadpool",
       "ThreadPool nested run_slots -> run_inline; per-slot timing ownership",
       "threadpool.nested-slot-seconds", &threadpool_harness},
      {"mailbox",
       "Mailbox multi-consumer (source, tag) channel + timed-recv watchdog",
       "mailbox.notify-one", &mailbox_harness},
      {"relaxmap-pair",
       "RelaxMap ModulePairGuard id-ordered two-module locking",
       "relaxmap.unordered-pair", &relaxmap_pair_harness},
      {"worklist",
       "LazyPriorityWorklist push/requeue vs drain under the rank lock",
       "worklist.unguarded-drain", &worklist_harness},
  };
  return kHarnesses;
}

const Harness* find_harness(const std::string& name) {
  for (const auto& h : harnesses())
    if (h.name == name) return &h;
  return nullptr;
}

}  // namespace dinfomap::dcheck
