#include "model.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "util/sched_point.hpp"

#if !defined(DINFOMAP_DCHECK)
#error "tools/dcheck must be built with -DDINFOMAP_DCHECK=ON"
#endif

namespace dinfomap::dcheck {

namespace {

using util::dcheck::Aborted;

/// Decision identity of the calling thread, assigned at adoption (main = 0).
thread_local int t_tid = -1;

enum class OpKind {
  kStart,         ///< adopted thread's first visible step
  kMutexLock,     ///< acquire (util::Mutex, SpinLock)
  kCvWait,        ///< release mutex + park on cv
  kCvWaitTimed,   ///< same, but the timeout transition stays enabled
  kCvNotify,      ///< wake one/all (victim choice is a recorded decision)
  kAccess,        ///< tracked load/store (race-detector input)
  kRegion,        ///< labeled yield point, no memory semantics
  kJoinAll,       ///< ThreadPool dtor: wait for all non-spawned peers
  kJoinSpawned,   ///< Context::join_spawned: wait for all spawned threads
};

struct Op {
  OpKind kind = OpKind::kStart;
  const void* obj = nullptr;   ///< mutex / cv / tracked address
  const void* obj2 = nullptr;  ///< the mutex, for cv waits
  bool write = false;
  bool atomic = false;
  bool notify_all = false;
  const char* what = "";
};

const char* op_name(OpKind k) {
  switch (k) {
    case OpKind::kStart: return "start";
    case OpKind::kMutexLock: return "lock";
    case OpKind::kCvWait: return "cv-wait";
    case OpKind::kCvWaitTimed: return "cv-wait-timed";
    case OpKind::kCvNotify: return "notify";
    case OpKind::kAccess: return "access";
    case OpKind::kRegion: return "region";
    case OpKind::kJoinAll: return "join-all";
    case OpKind::kJoinSpawned: return "join-spawned";
  }
  return "?";
}

/// Sparse vector clock: tid -> epoch.
using VClock = std::map<int, std::uint64_t>;

void join_clock(VClock& into, const VClock& from) {
  for (const auto& [t, e] : from) {
    auto& v = into[t];
    if (e > v) v = e;
  }
}

bool hb_leq(std::uint64_t epoch, int tid, const VClock& vc) {
  const auto it = vc.find(tid);
  return it != vc.end() && epoch <= it->second;
}

enum class TState {
  kRunning,         ///< holds the token, executing user code
  kParked,          ///< at a scheduling point, pending op not yet executed
  kBlockedCv,       ///< in cv wait; unschedulable until notified
  kBlockedCvTimed,  ///< in timed cv wait; the timeout keeps it schedulable
  kWokenCv,         ///< notified; pending mutex reacquire
  kFinished,
};

struct ThreadRec {
  int id = -1;
  std::string name;
  bool spawned = false;  ///< Context::spawn (vs ThreadPool adoption / main)
  TState state = TState::kRunning;
  Op pending;
  VClock vc;
  VClock wake_clock;  ///< cv clock captured at notify, joined at reacquire
  std::vector<std::pair<const void*, const char*>> held;  ///< lock stack
};

struct MutexRec {
  int owner = -1;
  VClock clock;
  const char* what = "";
};

struct CvRec {
  VClock clock;
};

struct Access {
  int tid = -1;
  std::uint64_t epoch = 0;
  const char* what = "";
  std::string thread;
};

struct AddrRec {
  Access write;
  std::map<int, Access> reads;
  VClock sync;  ///< acq/rel clock for Atomic<> accesses
};

struct TrailEntry {
  bool victim = false;          ///< cv_notify victim decision
  std::vector<int> candidates;  ///< thread ids, exploration order
  int chosen = 0;               ///< index into candidates
};

struct LockEdge {
  const void* from;
  const void* to;
  std::string desc;  ///< "T1(...) acquired B@0x.. while holding A@0x.."
};

}  // namespace

// ---------------------------------------------------------------------------

class Model final : public util::dcheck::SchedHooks {
 public:
  Result explore_all(const Options& options,
                     const std::function<void(Context&)>& body);

  // --- Context surface -----------------------------------------------------
  void spawn_thread(std::string name, std::function<void()> fn);
  void join_spawned_op();
  void check_invariant(bool ok, const std::string& what);

  // --- SchedHooks ----------------------------------------------------------
  void mutex_lock(void* m, const char* what) override {
    Op op;
    op.kind = OpKind::kMutexLock;
    op.obj = m;
    op.what = what;
    sched(op);
  }
  void mutex_unlock(void* m) override;
  void cv_wait(void* cv, void* m) override {
    Op op;
    op.kind = OpKind::kCvWait;
    op.obj = cv;
    op.obj2 = m;
    op.what = "cv";
    sched(op);
  }
  bool cv_wait_timed(void* cv, void* m) override {
    Op op;
    op.kind = OpKind::kCvWaitTimed;
    op.obj = cv;
    op.obj2 = m;
    op.what = "cv-timed";
    return sched(op);
  }
  void cv_notify(void* cv, bool all) override {
    Op op;
    op.kind = OpKind::kCvNotify;
    op.obj = cv;
    op.notify_all = all;
    op.what = all ? "notify-all" : "notify-one";
    sched(op);
  }
  void access(const void* addr, bool write, bool atomic,
              const char* what) override {
    Op op;
    op.kind = OpKind::kAccess;
    op.obj = addr;
    op.write = write;
    op.atomic = atomic;
    op.what = what;
    sched(op);
  }
  void region(const char* what, const void* obj) override {
    Op op;
    op.kind = OpKind::kRegion;
    op.obj = obj;
    op.what = what;
    sched(op);
  }
  void thread_announced() override { announce("worker", /*spawned=*/false); }
  void thread_started() override { adopt_and_wait_for_grant(); }
  void thread_finished() override;
  void join_all() override {
    Op op;
    op.kind = OpKind::kJoinAll;
    op.what = "join-all";
    sched(op);
  }

 private:
  enum class Exec { kDone, kDoneNotified, kDoneTimeout, kParkAgain };
  static constexpr std::size_t kNoPrune = static_cast<std::size_t>(-1);

  bool sched(const Op& op);
  void announce(std::string name, bool spawned);
  void adopt_and_wait_for_grant();
  bool park_loop(std::unique_lock<std::mutex>& lk, int self);
  void pick_next(std::unique_lock<std::mutex>& lk, int self);
  int choose_victim(const std::vector<int>& waiters);
  Exec execute(std::unique_lock<std::mutex>& lk, int self);
  void do_acquire(ThreadRec& t, const void* m, const char* what,
                  bool from_wait);
  void check_lock_order(const ThreadRec& t, const void* m, const char* what);
  void race_check(ThreadRec& t, const Op& op);
  bool op_enabled(const ThreadRec& t) const;
  void wake_sleepers(const Op& executed);
  /// Record the first failure (with the current schedule) and switch the run
  /// into drain mode. Never throws — scheduling points can sit inside
  /// noexcept destructors (~ThreadPool), so failure must not unwind the
  /// *discovering* thread; the run just finishes unfiltered. mu_ held.
  void fail(std::string kind, std::string detail);
  std::string deadlock_diagnosis(bool& cv_waiter) const;
  std::string schedule_string() const;
  std::string thread_label(int tid) const;
  void note_step(int self, const std::string& desc);
  void run_once(const std::function<void(Context&)>& body);
  bool advance_trail();
  static std::vector<std::pair<bool, int>> parse_schedule(const std::string& s);

  std::mutex mu_;
  std::condition_variable cv_;

  // --- per-exploration -----------------------------------------------------
  Options opts_;
  int bound_ = 0;
  bool replaying_ = false;
  std::vector<std::pair<bool, int>> replay_;  ///< (victim?, id)
  std::vector<TrailEntry> trail_;
  std::uint64_t steps_total_ = 0;

  // Failure capture — sticky until read by explore_all.
  bool failed_ = false;
  int fail_bound_ = -1;
  std::string fail_kind_, fail_detail_, fail_schedule_;
  std::vector<std::string> fail_trace_;

  // --- per-run -------------------------------------------------------------
  std::map<int, ThreadRec> threads_;
  std::map<const void*, MutexRec> mutexes_;
  std::map<const void*, CvRec> cvs_;
  std::map<const void*, AddrRec> addrs_;
  std::vector<LockEdge> lock_edges_;
  std::set<std::pair<const void*, const void*>> edge_set_;
  std::size_t pos_ = 0;  ///< decisions consumed this run
  std::set<int> sleep_;
  int prev_ = 0;
  int preemptions_ = 0;
  int active_ = 0;
  /// Failure recorded: property checks and exploration filters are off and
  /// the run is driven, still serialized, to completion.
  bool draining_ = false;
  bool pruned_ = false;
  std::size_t prune_len_ = kNoPrune;  ///< trail length at the first prune
  /// Threads being forcibly unwound (they receive Aborted at their parked
  /// frame) because a deadlock left them unable to ever finish.
  std::set<int> killed_;
  int next_tid_ = 1;
  int announced_ = 0, adopted_ = 0;
  bool adoption_pending_ = false;
  bool adopt_spawned_ = false;
  VClock spawn_clock_;  ///< creator's clock at announce
  std::string spawn_name_;
  std::uint64_t steps_run_ = 0;
  std::vector<std::string> trace_;
  std::vector<std::thread> spawned_real_;
};

// ---------------------------------------------------------------------------
// Context
// ---------------------------------------------------------------------------

void Context::spawn(std::string name, std::function<void()> fn) {
  model_.spawn_thread(std::move(name), std::move(fn));
}
void Context::join_spawned() { model_.join_spawned_op(); }
void Context::check(bool ok, const std::string& what) {
  model_.check_invariant(ok, what);
}

// ---------------------------------------------------------------------------
// Scheduling core
// ---------------------------------------------------------------------------

std::string Model::thread_label(int tid) const {
  const auto it = threads_.find(tid);
  std::ostringstream os;
  os << "T" << tid;
  if (it != threads_.end() && !it->second.name.empty())
    os << "(" << it->second.name << ")";
  return os.str();
}

void Model::note_step(int self, const std::string& desc) {
  ++steps_run_;
  ++steps_total_;
  // The per-step log is only materialized under replay; exploration failures
  // replay their own schedule to regenerate it, which doubles as proof that
  // the printed schedule string reproduces the bug.
  if (replaying_ && trace_.size() < 4000) {
    std::ostringstream os;
    os << "#" << steps_run_ << " " << thread_label(self) << " " << desc;
    trace_.push_back(os.str());
  }
}

bool Model::sched(const Op& op) {
  std::unique_lock<std::mutex> lk(mu_);
  const int self = t_tid;
  if (killed_.count(self) != 0) throw Aborted{};
  ThreadRec& t = threads_.at(self);
  t.pending = op;
  t.state = TState::kParked;
  return park_loop(lk, self);
}

/// Park with a pending op; alternate pick_next / wait-for-grant / execute
/// until the op completes. The caller must be the token holder. Returns the
/// notified/timeout verdict for timed waits (true = notified), else true.
bool Model::park_loop(std::unique_lock<std::mutex>& lk, int self) {
  ThreadRec& t = threads_.at(self);
  for (;;) {
    pick_next(lk, self);
    cv_.wait(lk,
             [&] { return killed_.count(self) != 0 || active_ == self; });
    if (killed_.count(self) != 0) throw Aborted{};
    const Exec r = execute(lk, self);
    if (r == Exec::kParkAgain) continue;
    t.state = TState::kRunning;
    return r != Exec::kDoneTimeout;
  }
}

void Model::announce(std::string name, bool spawned) {
  std::unique_lock<std::mutex> lk(mu_);
  // Serialize adoption so thread ids bind to announce order — that is what
  // keeps decision identities deterministic across runs.
  cv_.wait(lk, [&] {
    return !adoption_pending_ || killed_.count(t_tid) != 0;
  });
  if (killed_.count(t_tid) != 0) throw Aborted{};
  adoption_pending_ = true;
  adopt_spawned_ = spawned;
  spawn_name_ = std::move(name);
  ++announced_;
  // The child starts from everything the creator has done so far.
  const auto it = threads_.find(t_tid);
  if (it != threads_.end()) {
    spawn_clock_ = it->second.vc;
    ++it->second.vc[t_tid];
  }
}

/// Runs on the freshly created thread. Registers it and waits for its first
/// grant; it is NOT the token holder, so it must not pick. Its first visible
/// op (kStart) executes when some scheduling decision selects it.
void Model::adopt_and_wait_for_grant() {
  std::unique_lock<std::mutex> lk(mu_);
  const int id = next_tid_++;
  t_tid = id;
  ThreadRec t;
  t.id = id;
  t.name = spawn_name_.empty() ? "worker" : spawn_name_;
  if (t.name == "worker") t.name = "worker-" + std::to_string(id);
  t.spawned = adopt_spawned_;
  t.state = TState::kParked;
  t.pending = Op{};  // kStart
  t.vc = spawn_clock_;
  t.vc[id] = 1;
  threads_.emplace(id, std::move(t));
  ++adopted_;
  adoption_pending_ = false;
  cv_.notify_all();
  cv_.wait(lk, [&] { return killed_.count(id) != 0 || active_ == id; });
  if (killed_.count(id) != 0) throw Aborted{};
  execute(lk, id);  // kStart: trivially Done
  threads_.at(id).state = TState::kRunning;
}

void Model::thread_finished() {
  std::unique_lock<std::mutex> lk(mu_);
  const int self = t_tid;
  const auto it = threads_.find(self);
  if (it == threads_.end()) return;
  it->second.state = TState::kFinished;
  killed_.erase(self);
  // A finish changes join enabledness; be conservative with the sleep set.
  sleep_.clear();
  note_step(self, "finished");
  try {
    pick_next(lk, self);  // hand the token onward
  } catch (const Aborted&) {
    // This thread's contract is to never throw from here; pick_next only
    // throws for killed callers, and a finished thread cannot be one.
  }
}

void Model::spawn_thread(std::string name, std::function<void()> fn) {
  announce(std::move(name), /*spawned=*/true);
  spawned_real_.emplace_back([this, fn = std::move(fn)] {
    util::dcheck::set_on_model_thread(true);
    try {
      adopt_and_wait_for_grant();
      fn();
    } catch (const Aborted&) {
    }
    thread_finished();
  });
}

void Model::join_spawned_op() {
  Op op;
  op.kind = OpKind::kJoinSpawned;
  op.what = "join-spawned";
  sched(op);
}

void Model::check_invariant(bool ok, const std::string& what) {
  if (ok) return;
  std::unique_lock<std::mutex> lk(mu_);
  fail("assert", "harness invariant failed: " + what);
}

void Model::mutex_unlock(void* m) {
  // Not a scheduling point: release immediately; the owner's next hook call
  // offers the switch. Blocked acquirers become enabled here, so dependent
  // sleepers must wake. Also deliberately non-throwing: killed threads
  // release their model locks through here while unwinding destructors.
  std::unique_lock<std::mutex> lk(mu_);
  const auto tit = threads_.find(t_tid);
  if (tit == threads_.end()) return;
  ThreadRec& t = tit->second;
  MutexRec& mr = mutexes_[m];
  mr.owner = -1;
  mr.clock = t.vc;
  ++t.vc[t.id];
  for (auto it = t.held.rbegin(); it != t.held.rend(); ++it) {
    if (it->first == m) {
      t.held.erase(std::next(it).base());
      break;
    }
  }
  Op rel;
  rel.kind = OpKind::kMutexLock;  // same dependence footprint as an acquire
  rel.obj = m;
  wake_sleepers(rel);
}

// ---------------------------------------------------------------------------
// Enabledness, choice, execution
// ---------------------------------------------------------------------------

bool Model::op_enabled(const ThreadRec& t) const {
  switch (t.state) {
    case TState::kBlockedCv:
      return false;
    case TState::kBlockedCvTimed:
    case TState::kWokenCv: {
      // Timeout and wakeup both reacquire the mutex first.
      const auto it = mutexes_.find(t.pending.obj2);
      return it == mutexes_.end() || it->second.owner == -1;
    }
    case TState::kParked:
      break;
    default:
      return false;
  }
  switch (t.pending.kind) {
    case OpKind::kMutexLock: {
      const auto it = mutexes_.find(t.pending.obj);
      return it == mutexes_.end() || it->second.owner == -1;
    }
    case OpKind::kJoinAll:
      for (const auto& [id, u] : threads_)
        if (id != t.id && !u.spawned && u.state != TState::kFinished)
          return false;
      return true;
    case OpKind::kJoinSpawned:
      for (const auto& [id, u] : threads_)
        if (u.spawned && u.state != TState::kFinished) return false;
      return true;
    default:
      return true;
  }
}

void Model::pick_next(std::unique_lock<std::mutex>& lk, int self) {
  // Every announced thread must be adopted (and therefore parked) before a
  // sound decision can be made.
  cv_.wait(lk, [&] {
    return killed_.count(self) != 0 || adopted_ == announced_;
  });
  if (killed_.count(self) != 0) throw Aborted{};

  std::vector<int> enabled;
  bool any_live = false;
  for (const auto& [id, t] : threads_) {
    if (t.state == TState::kFinished) continue;
    if (t.state == TState::kRunning && id != self) continue;  // unreachable
    any_live = true;
    if (op_enabled(t)) enabled.push_back(id);
  }

  if (enabled.empty()) {
    if (!any_live) return;  // everything done; nobody to grant
    // If killed threads are still unwinding, their finishes will re-enter
    // pick_next and recompute; the joins waiting on them stay parked.
    bool kill_pending = false;
    for (const int id : killed_)
      if (threads_.at(id).state != TState::kFinished) kill_pending = true;
    if (!kill_pending) {
      if (!failed_) {
        bool cv_waiter = false;
        const std::string why = deadlock_diagnosis(cv_waiter);
        fail(cv_waiter ? "lost-wakeup" : "deadlock", why);
      }
      // Force the stuck threads to unwind (Aborted at their parked frame)
      // so the run can finish. Join-parked threads are spared: their joins
      // become satisfiable once the victims finish. The victims' parked
      // frames are lock/cv waits in plain code, never noexcept destructors.
      bool killed_any = false;
      for (const auto& [id, t] : threads_) {
        if (t.state == TState::kFinished) continue;
        if (t.pending.kind == OpKind::kJoinAll ||
            t.pending.kind == OpKind::kJoinSpawned)
          continue;
        if (killed_.insert(id).second) killed_any = true;
      }
      if (!killed_any) {
        // Only join-parked threads remain and none can progress (a join
        // cycle, which our primitives cannot express): last resort.
        for (const auto& [id, t] : threads_)
          if (t.state != TState::kFinished) killed_.insert(id);
      }
      cv_.notify_all();
    }
    if (killed_.count(self) != 0) throw Aborted{};
    return;  // a victim's thread_finished will grant the survivors
  }

  std::sort(enabled.begin(), enabled.end());
  const bool prev_enabled =
      std::find(enabled.begin(), enabled.end(), prev_) != enabled.end();
  if (prev_enabled) {
    // Prefer continuing the previous thread: the first run of every branch
    // is the most sequential schedule the constraints allow.
    enabled.erase(std::find(enabled.begin(), enabled.end(), prev_));
    enabled.insert(enabled.begin(), prev_);
  }

  if (draining_) {
    // Post-failure: no filters, no trail bookkeeping — just run everything,
    // still serialized, to completion.
    active_ = enabled.front();
    prev_ = active_;
    cv_.notify_all();
    return;
  }

  std::vector<int> cands;
  for (const int id : enabled) {
    if (!replaying_) {
      if (sleep_.count(id) != 0) continue;
      if (bound_ >= 0 && preemptions_ >= bound_ && prev_enabled && id != prev_)
        continue;
    }
    cands.push_back(id);
  }
  if (cands.empty()) {
    // Sleep-set blocked: every candidate was explored in a sibling branch.
    // The run is redundant but still has to finish — execute it unfiltered
    // and have the driver cut the trail back to the prune point.
    if (prune_len_ == kNoPrune) {
      pruned_ = true;
      prune_len_ = trail_.size();
    }
    cands = enabled;
  }

  int chosen;
  if (replaying_ && pos_ < replay_.size()) {
    const auto [victim_step, id] = replay_[pos_];
    if (victim_step ||
        std::find(cands.begin(), cands.end(), id) == cands.end()) {
      fail("replay-mismatch",
           "schedule step " + std::to_string(pos_) + " expects T" +
               std::to_string(id) + " but it is not an enabled thread here");
      return pick_next(lk, self);  // drain path grants and returns
    }
    chosen = id;
    TrailEntry e;
    e.candidates = cands;
    e.chosen = static_cast<int>(std::find(cands.begin(), cands.end(), id) -
                                cands.begin());
    trail_.push_back(e);
  } else if (pos_ < trail_.size()) {
    TrailEntry& e = trail_[pos_];
    chosen = e.candidates[static_cast<std::size_t>(e.chosen)];
    // Siblings explored in earlier branches sleep through this one.
    for (int i = 0; i < e.chosen; ++i)
      sleep_.insert(e.candidates[static_cast<std::size_t>(i)]);
    if (std::find(enabled.begin(), enabled.end(), chosen) == enabled.end()) {
      fail("internal", "trail divergence: recorded thread not enabled");
      return pick_next(lk, self);
    }
  } else {
    TrailEntry e;
    e.candidates = cands;
    e.chosen = 0;
    trail_.push_back(e);
    chosen = cands[0];
  }
  ++pos_;
  if (prev_enabled && chosen != prev_) ++preemptions_;
  prev_ = chosen;
  active_ = chosen;
  cv_.notify_all();
}

/// Victim decision for notify_one with several waiters: same trail
/// machinery, no sleep/preemption semantics. Called with mu_ held.
int Model::choose_victim(const std::vector<int>& waiters) {
  if (draining_) return waiters.front();
  TrailEntry e;
  e.victim = true;
  e.candidates = waiters;
  if (replaying_ && pos_ < replay_.size()) {
    const auto [victim_step, id] = replay_[pos_];
    const auto it = std::find(waiters.begin(), waiters.end(), id);
    if (!victim_step || it == waiters.end()) {
      fail("replay-mismatch",
           "schedule step " + std::to_string(pos_) +
               " expects a notify victim that is not waiting here");
      return waiters.front();
    }
    e.chosen = static_cast<int>(it - waiters.begin());
    trail_.push_back(e);
  } else if (pos_ < trail_.size()) {
    e = trail_[pos_];
  } else {
    trail_.push_back(e);
  }
  ++pos_;
  return e.candidates[static_cast<std::size_t>(e.chosen)];
}

void Model::check_lock_order(const ThreadRec& t, const void* m,
                             const char* what) {
  for (const auto& [h, h_what] : t.held) {
    if (h == m) continue;
    if (!edge_set_.insert({h, m}).second) continue;
    std::ostringstream site;
    site << thread_label(t.id) << " acquired " << what << "@" << m
         << " while holding " << h_what << "@" << h;
    lock_edges_.push_back({h, m, site.str()});
    // New edge h -> m: if m already reaches h, the edge closes a cycle.
    std::vector<const void*> stack{m};
    std::set<const void*> seen{m};
    bool cycle = false;
    while (!stack.empty() && !cycle) {
      const void* cur = stack.back();
      stack.pop_back();
      for (const auto& [a, b] : edge_set_) {
        if (a != cur) continue;
        if (b == h) {
          cycle = true;
          break;
        }
        if (seen.insert(b).second) stack.push_back(b);
      }
    }
    if (cycle) {
      std::ostringstream why;
      why << "lock-order cycle closed by: " << site.str()
          << "\nacquisition edges involving these locks:";
      for (const auto& edge : lock_edges_)
        if (edge.from == m || edge.to == m || edge.from == h || edge.to == h)
          why << "\n  " << edge.desc;
      fail("lock-order-cycle", why.str());
    }
  }
}

void Model::do_acquire(ThreadRec& t, const void* m, const char* what,
                       bool from_wait) {
  check_lock_order(t, m, what);
  MutexRec& mr = mutexes_[m];
  mr.owner = t.id;
  mr.what = what;
  join_clock(t.vc, mr.clock);
  if (from_wait) join_clock(t.vc, t.wake_clock);
  t.held.emplace_back(m, what);
}

void Model::race_check(ThreadRec& t, const Op& op) {
  AddrRec& a = addrs_[op.obj];
  if (op.atomic) {
    // Atomic accesses synchronize through the address (acq/rel both ways —
    // conservative RMW semantics) and are never themselves races.
    join_clock(t.vc, a.sync);
    join_clock(a.sync, t.vc);
    return;
  }
  const std::uint64_t my_epoch = t.vc[t.id];
  const Access* other = nullptr;
  if (a.write.tid >= 0 && a.write.tid != t.id &&
      !hb_leq(a.write.epoch, a.write.tid, t.vc))
    other = &a.write;
  if (op.write && other == nullptr) {
    for (const auto& [rt, acc] : a.reads) {
      if (rt != t.id && !hb_leq(acc.epoch, rt, t.vc)) {
        other = &acc;
        break;
      }
    }
  }
  if (other != nullptr) {
    std::ostringstream os;
    os << "data race on " << op.what << " @" << op.obj << ": "
       << (op.write ? "write" : "read") << " by " << thread_label(t.id)
       << " is concurrent with "
       << (other == &a.write ? "write" : "read") << " by " << other->thread
       << " (" << other->what << ")";
    fail("data-race", os.str());
  }
  if (op.write) {
    a.write = {t.id, my_epoch, op.what, thread_label(t.id)};
    a.reads.clear();
  } else {
    a.reads[t.id] = {t.id, my_epoch, op.what, thread_label(t.id)};
  }
}

Model::Exec Model::execute(std::unique_lock<std::mutex>& lk, int self) {
  (void)lk;  // asserts the caller holds mu_; every path below relies on it
  ThreadRec& t = threads_.at(self);
  sleep_.erase(self);

  // Grants to cv waiters resume via the reacquire path, not the pending op.
  if (t.state == TState::kWokenCv || t.state == TState::kBlockedCvTimed) {
    const bool notified = t.state == TState::kWokenCv;
    do_acquire(t, t.pending.obj2, "util::Mutex", /*from_wait=*/notified);
    ++t.vc[self];
    note_step(self, std::string(notified ? "woke" : "cv timeout") +
                        ", reacquired mutex");
    Op reacq;
    reacq.kind = OpKind::kMutexLock;
    reacq.obj = t.pending.obj2;
    wake_sleepers(reacq);
    return notified ? Exec::kDoneNotified : Exec::kDoneTimeout;
  }

  if (steps_run_ >= opts_.max_steps_per_run) {
    fail("step-limit",
         "run exceeded " + std::to_string(opts_.max_steps_per_run) +
             " operations (livelock?)");
    if (steps_run_ >= 2 * opts_.max_steps_per_run + 1000) {
      // Drain mode did not converge either: the body itself never
      // terminates. Hard-kill everything as a last resort — risking a
      // terminate if a victim sits in a noexcept destructor beats hanging.
      for (const auto& [id, u] : threads_)
        if (u.state != TState::kFinished) killed_.insert(id);
      cv_.notify_all();
      throw Aborted{};
    }
  }

  const Op op = t.pending;
  std::ostringstream desc;
  desc << op_name(op.kind);
  if (op.what != nullptr && op.what[0] != '\0') desc << " " << op.what;
  if (op.obj != nullptr) desc << " @" << op.obj;

  switch (op.kind) {
    case OpKind::kStart:
      break;
    case OpKind::kMutexLock:
      do_acquire(t, op.obj, op.what, /*from_wait=*/false);
      break;
    case OpKind::kCvWait:
    case OpKind::kCvWaitTimed: {
      // Atomically release the mutex and park on the cv.
      MutexRec& mr = mutexes_[op.obj2];
      mr.owner = -1;
      mr.clock = t.vc;
      for (auto it = t.held.rbegin(); it != t.held.rend(); ++it) {
        if (it->first == op.obj2) {
          t.held.erase(std::next(it).base());
          break;
        }
      }
      ++t.vc[self];
      t.state = op.kind == OpKind::kCvWait ? TState::kBlockedCv
                                           : TState::kBlockedCvTimed;
      note_step(self, desc.str());
      wake_sleepers(op);
      return Exec::kParkAgain;
    }
    case OpKind::kCvNotify: {
      CvRec& c = cvs_[op.obj];
      join_clock(c.clock, t.vc);
      std::vector<int> waiters;
      for (auto& [id, u] : threads_) {
        if ((u.state == TState::kBlockedCv ||
             u.state == TState::kBlockedCvTimed) &&
            u.pending.obj == op.obj)
          waiters.push_back(id);
      }
      std::sort(waiters.begin(), waiters.end());
      if (!waiters.empty()) {
        std::vector<int> woken;
        if (op.notify_all || waiters.size() == 1) {
          woken = op.notify_all ? waiters : std::vector<int>{waiters.front()};
        } else {
          woken.push_back(choose_victim(waiters));
        }
        for (const int id : woken) {
          ThreadRec& w = threads_.at(id);
          w.state = TState::kWokenCv;
          w.wake_clock = c.clock;
          desc << " -> " << thread_label(id);
        }
      } else {
        desc << " (no waiters)";
      }
      break;
    }
    case OpKind::kAccess:
      race_check(t, op);
      break;
    case OpKind::kRegion:
      break;
    case OpKind::kJoinAll:
    case OpKind::kJoinSpawned:
      // Join point: adopt every finished thread's clock.
      for (const auto& [id, u] : threads_)
        if (u.state == TState::kFinished) join_clock(t.vc, u.vc);
      break;
  }
  ++t.vc[self];
  note_step(self, desc.str());
  wake_sleepers(op);
  return Exec::kDone;
}

/// Conservative dependence: two operations are dependent when they can touch
/// a common object (read/read on a plain address being the one independent
/// same-object case). Removing a sleeper too eagerly only costs pruning;
/// removing one too lazily would lose soundness, hence the coarse test.
void Model::wake_sleepers(const Op& executed) {
  const auto objects = [](const Op& o) {
    std::vector<const void*> v;
    if (o.obj != nullptr) v.push_back(o.obj);
    if (o.obj2 != nullptr) v.push_back(o.obj2);
    return v;
  };
  const auto ex_objs = objects(executed);
  for (auto it = sleep_.begin(); it != sleep_.end();) {
    const auto tit = threads_.find(*it);
    if (tit == threads_.end() || tit->second.state == TState::kFinished) {
      it = sleep_.erase(it);
      continue;
    }
    const ThreadRec& s = tit->second;
    const auto s_objs = objects(s.pending);
    bool dep = false;
    for (const void* a : ex_objs) {
      for (const void* b : s_objs) {
        if (a != b) continue;
        const bool both_plain_reads =
            executed.kind == OpKind::kAccess && !executed.atomic &&
            !executed.write && s.pending.kind == OpKind::kAccess &&
            !s.pending.atomic && !s.pending.write;
        if (!both_plain_reads) dep = true;
      }
    }
    if (dep) it = sleep_.erase(it); else ++it;
  }
}

// ---------------------------------------------------------------------------
// Failure / teardown
// ---------------------------------------------------------------------------

std::string Model::schedule_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < pos_ && i < trail_.size(); ++i) {
    if (i != 0) os << ",";
    const TrailEntry& e = trail_[i];
    if (e.victim) os << "w";
    os << e.candidates[static_cast<std::size_t>(e.chosen)];
  }
  return os.str();
}

void Model::fail(std::string kind, std::string detail) {
  if (failed_) return;  // first failure wins; later ones are drain artifacts
  failed_ = true;
  fail_bound_ = bound_;
  fail_kind_ = std::move(kind);
  fail_detail_ = std::move(detail);
  fail_schedule_ = schedule_string();
  fail_trace_ = trace_;
  draining_ = true;
  cv_.notify_all();
}

std::string Model::deadlock_diagnosis(bool& cv_waiter) const {
  cv_waiter = false;
  std::ostringstream os;
  os << "no thread is enabled; blocked threads:";
  for (const auto& [id, t] : threads_) {
    if (t.state == TState::kFinished) continue;
    os << "\n  " << thread_label(id) << ": ";
    switch (t.state) {
      case TState::kBlockedCv:
      case TState::kBlockedCvTimed:
        cv_waiter = true;
        os << "waiting on cv @" << t.pending.obj;
        break;
      case TState::kWokenCv:
        os << "woken, blocked reacquiring mutex @" << t.pending.obj2;
        break;
      default: {
        os << "blocked at " << op_name(t.pending.kind);
        if (t.pending.what != nullptr && t.pending.what[0] != '\0')
          os << " " << t.pending.what;
        if (t.pending.kind == OpKind::kMutexLock) {
          const auto it = mutexes_.find(t.pending.obj);
          if (it != mutexes_.end() && it->second.owner == id)
            os << " (relock of a mutex this thread already holds)";
          else if (it != mutexes_.end() && it->second.owner >= 0)
            os << " (held by " << thread_label(it->second.owner) << ")";
        }
        break;
      }
    }
    if (!t.held.empty()) {
      os << "; holds";
      for (const auto& [m, what] : t.held) os << " " << what << "@" << m;
    }
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// Exploration driver
// ---------------------------------------------------------------------------

void Model::run_once(const std::function<void(Context&)>& body) {
  {
    std::unique_lock<std::mutex> lk(mu_);
    threads_.clear();
    mutexes_.clear();
    cvs_.clear();
    addrs_.clear();
    lock_edges_.clear();
    edge_set_.clear();
    pos_ = 0;
    sleep_.clear();
    prev_ = 0;
    preemptions_ = 0;
    active_ = 0;
    draining_ = false;
    pruned_ = false;
    prune_len_ = kNoPrune;
    killed_.clear();
    next_tid_ = 1;
    announced_ = adopted_ = 0;
    adoption_pending_ = false;
    steps_run_ = 0;
    trace_.clear();
    ThreadRec main_rec;
    main_rec.id = 0;
    main_rec.name = "main";
    main_rec.state = TState::kRunning;
    main_rec.vc[0] = 1;
    threads_.emplace(0, std::move(main_rec));
    t_tid = 0;
  }
  Context ctx(*this);
  try {
    body(ctx);
  } catch (const Aborted&) {
  } catch (const std::exception& e) {
    std::unique_lock<std::mutex> lk(mu_);
    fail("exception", std::string("harness threw: ") + e.what());
  }
  {
    // A body that returns with live model threads (forgot join_spawned, or
    // leaked a pool) would leave them parked forever; kill them so the run
    // unwinds, and report it loudly.
    std::unique_lock<std::mutex> lk(mu_);
    bool live = false;
    for (const auto& [id, t] : threads_)
      if (id != 0 && t.state != TState::kFinished) live = true;
    if (live) {
      fail("assert",
           "harness body returned while model threads are still live "
           "(missing join_spawned / pool not destroyed in the body)");
      for (const auto& [id, t] : threads_)
        if (id != 0 && t.state != TState::kFinished) killed_.insert(id);
      cv_.notify_all();
    }
  }
  // Real-thread teardown: everything spawned has unwound (normally or via
  // Aborted); collect the std::threads. ThreadPool workers are joined by the
  // pool's own destructor inside the body.
  for (auto& th : spawned_real_) th.join();
  spawned_real_.clear();
}

bool Model::advance_trail() {
  while (!trail_.empty()) {
    TrailEntry& e = trail_.back();
    if (e.chosen + 1 < static_cast<int>(e.candidates.size())) {
      ++e.chosen;
      return true;
    }
    trail_.pop_back();
  }
  return false;
}

std::vector<std::pair<bool, int>> Model::parse_schedule(const std::string& s) {
  std::vector<std::pair<bool, int>> out;
  std::stringstream ss(s);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (tok.empty()) continue;
    bool victim = false;
    std::size_t off = 0;
    if (tok[0] == 'w') {
      victim = true;
      off = 1;
    }
    try {
      out.emplace_back(victim, std::stoi(tok.substr(off)));
    } catch (const std::exception&) {
      throw std::invalid_argument("bad schedule token: '" + tok + "'");
    }
  }
  return out;
}

Result Model::explore_all(const Options& options,
                          const std::function<void(Context&)>& body) {
  opts_ = options;
  Result res;
  const auto t0 = std::chrono::steady_clock::now();
  const auto elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
  };

  util::dcheck::install_hooks(this);
  util::dcheck::set_on_model_thread(true);
  util::dcheck::set_mutation(
      options.mutation.empty() ? nullptr : options.mutation.c_str());

  const bool replay_only = !options.replay.empty();
  bool out_of_budget = false;
  if (replay_only) {
    replaying_ = true;
    replay_ = parse_schedule(options.replay);
    bound_ = -1;  // unbounded while following the schedule
    trail_.clear();
    run_once(body);
    ++res.schedules;
  } else {
    const int max_bound = options.max_preemptions;
    const int first = max_bound < 0 ? -1 : 0;
    const int last = max_bound < 0 ? -1 : max_bound;
    for (int b = first; b <= last && !failed_ && !out_of_budget; ++b) {
      bound_ = b;
      trail_.clear();
      for (;;) {
        run_once(body);
        ++res.schedules;
        if (pruned_) {
          // The run turned redundant at prune_len_ and was driven to
          // completion unfiltered; backtracking resumes at the prune point.
          ++res.pruned;
          trail_.resize(prune_len_);
        }
        if (failed_) break;
        if ((options.max_schedules != 0 &&
             res.schedules >= options.max_schedules) ||
            (options.max_seconds > 0 && elapsed() >= options.max_seconds)) {
          out_of_budget = true;
          break;
        }
        if (!advance_trail()) break;
      }
      if (max_bound < 0) break;  // single unbounded pass
    }
    res.truncated = out_of_budget && !failed_;

    if (failed_ && fail_trace_.empty() && !fail_schedule_.empty()) {
      // Regenerate the step trace by replaying the failing schedule — which
      // also proves the printed schedule string reproduces the bug.
      const std::string kind = fail_kind_, detail = fail_detail_,
                        schedule = fail_schedule_;
      const int bound_found = fail_bound_;
      failed_ = false;
      replaying_ = true;
      replay_ = parse_schedule(schedule);
      bound_ = -1;
      trail_.clear();
      run_once(body);
      if (!failed_ || fail_kind_ != kind) {
        // Should not happen; keep the original diagnosis, note the mismatch.
        failed_ = true;
        fail_kind_ = kind;
        fail_detail_ = detail + "\n(replay verification diverged)";
        fail_schedule_ = schedule;
      }
      fail_bound_ = bound_found;
      replaying_ = false;
    }
  }

  res.failed = failed_;
  res.kind = fail_kind_;
  res.detail = fail_detail_;
  res.schedule = fail_schedule_;
  res.trace = fail_trace_;
  res.steps = steps_total_;
  res.failing_bound = failed_ ? fail_bound_ : -1;
  res.seconds = elapsed();

  util::dcheck::set_mutation(nullptr);
  util::dcheck::install_hooks(nullptr);
  return res;
}

// ---------------------------------------------------------------------------
// Public entry points
// ---------------------------------------------------------------------------

Result explore(const Options& options,
               const std::function<void(Context&)>& body) {
  Model model;
  return model.explore_all(options, body);
}

Result run_harness(const Harness& harness, const Options& options) {
  return explore(options, [&](Context& ctx) { harness.fn(ctx); });
}

}  // namespace dinfomap::dcheck
