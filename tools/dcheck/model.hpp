// dcheck — exhaustive interleaving model checker for the concurrency
// substrate (DESIGN.md §16).
//
// The checker implements util::dcheck::SchedHooks: under a DINFOMAP_DCHECK
// build, every synchronization point in util::Mutex / util::CondVar /
// util::Atomic / the RelaxMap SpinLock / comm::Mailbox funnels into this
// Model, which serializes the participating threads (real std::threads, but
// exactly one runs at a time) and explores their interleavings with a
// depth-first stateless search:
//
//   * iterative preemption bounding — bound 0 first (cooperative schedules
//     only), then 1, 2, ... up to --bound; most real bugs need <= 2
//     preemptions, so failures surface with short, readable schedules;
//   * sleep-set pruning — a thread whose pending operation is independent of
//     everything executed since a sibling branch explored it is not
//     rescheduled, removing commutations of independent operations;
//   * replay — every failure prints the schedule (the decision string); the
//     same string via Options::replay re-executes exactly that interleaving
//     with a per-step trace.
//
// Checked properties, all at scheduling-point granularity:
//   * data-race freedom over DI_SCHED_STORE/LOAD tracked accesses, via
//     FastTrack-style vector clocks (mutexes, condition variables and
//     Atomic<> accesses all propagate happens-before);
//   * deadlock freedom — no enabled thread while unfinished threads remain;
//     diagnosed as a lost wakeup when condition-variable waiters are among
//     the blocked;
//   * lock-order: a per-run object-level lock-order graph (edges from every
//     held lock to each newly acquired one) must stay acyclic, so an A→B /
//     B→A inversion is reported even on interleavings where it happens not
//     to deadlock;
//   * harness invariants via Context::check.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace dinfomap::dcheck {

class Model;

/// Per-run handle harness bodies use to create checked threads and assert
/// invariants. Spawned threads are adopted into the exploration exactly like
/// ThreadPool workers.
class Context {
 public:
  explicit Context(Model& model) : model_(model) {}
  /// Launch a model thread running `fn`. All spawned threads must be joined
  /// with join_spawned() before the body returns.
  void spawn(std::string name, std::function<void()> fn);
  /// Park until every spawned thread has finished (a scheduling point).
  void join_spawned();
  /// Invariant assertion: a false condition fails the exploration with the
  /// current schedule attached.
  void check(bool ok, const std::string& what);

 private:
  Model& model_;
};

using HarnessFn = void (*)(Context&);

/// A model harness: a body driving real production code, plus the name of
/// the seeded mutation that validates the harness can catch its target bug.
struct Harness {
  std::string name;
  std::string description;
  std::string mutation;  ///< empty: no seeded mutation
  HarnessFn fn = nullptr;
};

/// Registry of the shipped harnesses (threadpool, mailbox, relaxmap-pair,
/// worklist).
const std::vector<Harness>& harnesses();
const Harness* find_harness(const std::string& name);

struct Options {
  /// Maximum preemptions per schedule; explored iteratively 0..bound.
  /// Negative: unbounded (full DFS — the ci `full` leg).
  int max_preemptions = 3;
  /// Stop after this many schedules (0 = unlimited).
  std::uint64_t max_schedules = 0;
  /// Wall-clock budget for the exploration (0 = none).
  double max_seconds = 0;
  /// Abort a single run after this many executed operations (livelock guard).
  std::uint64_t max_steps_per_run = 50'000;
  /// Seeded mutation to enable for the whole exploration (empty: none).
  std::string mutation;
  /// Non-empty: skip exploration and run exactly this schedule string.
  std::string replay;
};

struct Result {
  bool failed = false;
  bool truncated = false;      ///< budget hit before the DFS completed
  std::string kind;            ///< data-race | deadlock | lost-wakeup |
                               ///< lock-order-cycle | assert | step-limit
  std::string detail;
  std::string schedule;        ///< decision string of the failing run
  std::vector<std::string> trace;  ///< per-step log of the failing run
  std::uint64_t schedules = 0;     ///< runs executed (including pruned)
  std::uint64_t pruned = 0;        ///< runs cut by sleep-set blocking
  std::uint64_t steps = 0;         ///< total operations executed
  int failing_bound = -1;          ///< preemption bound that found the bug
  double seconds = 0;
};

/// Explore all interleavings of `body` under `options`. The body runs once
/// per schedule on the calling thread; it must be re-runnable (construct all
/// state locally) and must join everything it spawned before returning.
Result explore(const Options& options, const std::function<void(Context&)>& body);

/// Convenience: explore a registered harness (applies its seeded mutation
/// only if `options.mutation` asks for it).
Result run_harness(const Harness& harness, const Options& options);

}  // namespace dinfomap::dcheck
