// Directed substrate and directed-Infomap extension tests.
#include <gtest/gtest.h>

#include <numeric>

#include "core/directed_infomap.hpp"
#include "core/mapequation.hpp"
#include "graph/dicsr.hpp"
#include "quality/metrics.hpp"
#include "util/check.hpp"
#include "util/random.hpp"

namespace dc = dinfomap::core;
namespace dg = dinfomap::graph;

namespace {
/// Two directed 3-cycles {0,1,2} and {3,4,5}, weakly coupled 2→3, 5→0.
dg::DiCsr two_cycles() {
  return dg::DiCsr::from_edges({{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5},
                                {5, 3}, {2, 3, 0.1}, {5, 0, 0.1}});
}

/// k directed cliques (all ordered pairs) in a weak ring.
dg::EdgeList directed_clique_ring(dg::VertexId k, dg::VertexId size) {
  dg::EdgeList edges;
  for (dg::VertexId c = 0; c < k; ++c) {
    const dg::VertexId base = c * size;
    for (dg::VertexId i = 0; i < size; ++i)
      for (dg::VertexId j = 0; j < size; ++j)
        if (i != j) edges.push_back({base + i, base + j, 1.0});
    edges.push_back({base, ((c + 1) % k) * size, 0.1});
  }
  return edges;
}
}  // namespace

TEST(DiCsr, BuildAndMirror) {
  const auto g = two_cycles();
  EXPECT_EQ(g.num_vertices(), 6u);
  EXPECT_EQ(g.num_arcs(), 8u);
  EXPECT_EQ(g.out_degree(2), 2u);  // 2→0 and 2→3
  EXPECT_EQ(g.in_degree(0), 2u);   // 2→0 and 5→0
  EXPECT_TRUE(g.validate());
}

TEST(DiCsr, ParallelArcsCombine) {
  const auto g = dg::DiCsr::from_edges({{0, 1, 1.0}, {0, 1, 2.0}});
  EXPECT_EQ(g.num_arcs(), 1u);
  EXPECT_DOUBLE_EQ(g.out_weight(0), 3.0);
}

TEST(DiCsr, DirectionMatters) {
  const auto g = dg::DiCsr::from_edges({{0, 1}});
  EXPECT_EQ(g.out_degree(0), 1u);
  EXPECT_EQ(g.out_degree(1), 0u);
  EXPECT_EQ(g.in_degree(1), 1u);
}

TEST(PageRank, SumsToOneAndRanksHub) {
  // Star pointing at 0: everyone links to 0; 0 is dangling.
  dg::EdgeList edges;
  for (dg::VertexId v = 1; v < 10; ++v) edges.push_back({v, 0});
  const auto g = dg::DiCsr::from_edges(edges);
  const auto pr = dc::pagerank(g);
  double sum = 0;
  for (double p : pr) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  for (dg::VertexId v = 1; v < 10; ++v) EXPECT_GT(pr[0], pr[v]);
}

TEST(PageRank, UniformOnSymmetricCycle) {
  const auto g = dg::DiCsr::from_edges({{0, 1}, {1, 2}, {2, 0}});
  const auto pr = dc::pagerank(g);
  for (double p : pr) EXPECT_NEAR(p, 1.0 / 3.0, 1e-9);
}

TEST(PageRank, DanglingMassRedistributed) {
  // 0→1, 1 dangling: no mass may vanish.
  const auto g = dg::DiCsr::from_edges({{0, 1}});
  const auto pr = dc::pagerank(g);
  EXPECT_NEAR(pr[0] + pr[1], 1.0, 1e-9);
  EXPECT_GT(pr[1], pr[0]);  // 1 receives 0's flow
}

TEST(PageRank, RejectsBadDamping) {
  const auto g = dg::DiCsr::from_edges({{0, 1}});
  dc::PageRankConfig cfg;
  cfg.damping = 1.0;
  EXPECT_THROW(dc::pagerank(g, cfg), dinfomap::ContractViolation);
}

TEST(DirectedInfomap, RecoversDirectedCliqueRing) {
  const auto g = dg::DiCsr::from_edges(directed_clique_ring(6, 5));
  const auto result = dc::directed_infomap(g);
  EXPECT_EQ(result.num_modules(), 6u);
  dg::Partition truth(30);
  for (dg::VertexId v = 0; v < 30; ++v) truth[v] = v / 5;
  EXPECT_DOUBLE_EQ(dinfomap::quality::nmi(result.assignment, truth), 1.0);
}

TEST(DirectedInfomap, TwoCyclesSeparate) {
  const auto result = dc::directed_infomap(two_cycles());
  EXPECT_EQ(result.num_modules(), 2u);
  EXPECT_EQ(result.assignment[0], result.assignment[1]);
  EXPECT_NE(result.assignment[0], result.assignment[3]);
}

TEST(DirectedInfomap, ImprovesOnSingletons) {
  const auto g = dg::DiCsr::from_edges(directed_clique_ring(8, 4));
  const auto result = dc::directed_infomap(g);
  EXPECT_LT(result.codelength, result.singleton_codelength);
}

TEST(DirectedInfomap, ReportedCodelengthMatchesRescoring) {
  const auto g = dg::DiCsr::from_edges(directed_clique_ring(5, 4));
  dc::DirectedInfomapConfig cfg;
  const auto result = dc::directed_infomap(g, cfg);
  const auto pr = dc::pagerank(g, cfg.pagerank);
  EXPECT_NEAR(result.codelength,
              dc::directed_codelength(g, pr, result.assignment,
                                      cfg.pagerank.damping),
              1e-9);
}

TEST(DirectedInfomap, DeterministicForSeed) {
  const auto g = dg::DiCsr::from_edges(directed_clique_ring(6, 4));
  const auto a = dc::directed_infomap(g);
  const auto b = dc::directed_infomap(g);
  EXPECT_EQ(a.assignment, b.assignment);
}

TEST(DirectedCodelength, AllInOneModuleIsEntropy) {
  const auto g = two_cycles();
  const auto pr = dc::pagerank(g);
  dg::Partition one(6, 0);
  double expected = 0;
  for (double p : pr) expected -= dc::plogp(p);
  EXPECT_NEAR(dc::directed_codelength(g, pr, one), expected, 1e-12);
}

// Property: random directed move deltas recomputed from scratch agree with
// the monotone trace (the optimizer never worsens L across levels).
class DirectedSeeds : public ::testing::TestWithParam<std::uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, DirectedSeeds, ::testing::Values(1u, 2u, 3u));

TEST_P(DirectedSeeds, CodelengthNeverAboveSingleton) {
  // Random directed graph with planted blocks: within-block arcs dense.
  dinfomap::util::Xoshiro256 rng(GetParam());
  dg::EdgeList edges;
  const dg::VertexId n = 120, blocks = 4, bs = n / blocks;
  for (dg::VertexId u = 0; u < n; ++u) {
    for (int t = 0; t < 6; ++t) {
      const auto in_block = static_cast<dg::VertexId>(
          (u / bs) * bs + rng.bounded(bs));
      if (in_block != u) edges.push_back({u, in_block, 1.0});
    }
    const auto anywhere = static_cast<dg::VertexId>(rng.bounded(n));
    if (anywhere != u) edges.push_back({u, anywhere, 0.3});
  }
  const auto g = dg::DiCsr::from_edges(edges);
  dc::DirectedInfomapConfig cfg;
  cfg.seed = GetParam();
  const auto result = dc::directed_infomap(g, cfg);
  EXPECT_LT(result.codelength, result.singleton_codelength);
  const auto pr = dc::pagerank(g, cfg.pagerank);
  EXPECT_NEAR(result.codelength,
              dc::directed_codelength(g, pr, result.assignment,
                                      cfg.pagerank.damping),
              1e-9);
}
