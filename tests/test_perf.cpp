#include <gtest/gtest.h>

#include "perf/cost_model.hpp"
#include "perf/work_counters.hpp"

namespace dp = dinfomap::perf;

TEST(WorkCounters, AccumulateAndAdd) {
  dp::WorkCounters a{1, 2, 3, 4, 5};
  const dp::WorkCounters b{10, 20, 30, 40, 50};
  a += b;
  EXPECT_EQ(a.arcs_scanned, 11u);
  EXPECT_EQ(a.bytes, 55u);
  const auto c = a + b;
  EXPECT_EQ(c.messages, 84u);
}

TEST(CostModel, ZeroWorkIsZeroTime) {
  const dp::CostModel model;
  EXPECT_DOUBLE_EQ(model.seconds({}), 0.0);
}

TEST(CostModel, ComputeAndCommSplit) {
  const dp::CostModel model;
  dp::WorkCounters w;
  w.arcs_scanned = 1000;
  w.messages = 10;
  w.bytes = 1 << 20;
  EXPECT_DOUBLE_EQ(model.compute_seconds(w), 1000 * model.sec_per_arc);
  EXPECT_DOUBLE_EQ(model.comm_seconds(w),
                   10 * model.alpha + (1 << 20) * model.beta);
  EXPECT_DOUBLE_EQ(model.seconds(w),
                   model.compute_seconds(w) + model.comm_seconds(w));
}

TEST(CostModel, MonotoneInEveryCounter) {
  const dp::CostModel model;
  dp::WorkCounters base{100, 100, 100, 100, 100};
  const double t0 = model.seconds(base);
  for (auto field : {&dp::WorkCounters::arcs_scanned, &dp::WorkCounters::delta_evals,
                     &dp::WorkCounters::module_updates, &dp::WorkCounters::messages,
                     &dp::WorkCounters::bytes}) {
    dp::WorkCounters more = base;
    more.*field += 1000;
    EXPECT_GT(model.seconds(more), t0);
  }
}

TEST(BspSeconds, SlowestRankGates) {
  const dp::CostModel model;
  dp::WorkCounters light, heavy;
  light.arcs_scanned = 10;
  heavy.arcs_scanned = 1000;
  const double t = dp::bsp_seconds({light, heavy, light}, model);
  EXPECT_DOUBLE_EQ(t, model.seconds(heavy));
}

TEST(BspSeconds, EmptyFleetIsZero) {
  EXPECT_DOUBLE_EQ(dp::bsp_seconds({}, {}), 0.0);
}

TEST(BspSeconds, PerfectBalanceScalesInverse) {
  // Same total work split over more ranks → proportionally less BSP time.
  const dp::CostModel model;
  dp::WorkCounters whole;
  whole.arcs_scanned = 1 << 20;
  dp::WorkCounters half = whole;
  half.arcs_scanned /= 2;
  EXPECT_NEAR(dp::bsp_seconds({half, half}, model),
              dp::bsp_seconds({whole}, model) / 2.0, 1e-12);
}
