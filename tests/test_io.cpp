#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "graph/builder.hpp"
#include "graph/edgelist_io.hpp"
#include "io/clustering_io.hpp"
#include "io/datasets.hpp"

namespace dg = dinfomap::graph;
namespace dio = dinfomap::io;

namespace {
class TempDir : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("dinfomap_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string path(const std::string& name) const { return (dir_ / name).string(); }
  std::filesystem::path dir_;
};

using EdgeListIo = TempDir;
using ClusteringIo = TempDir;
}  // namespace

TEST_F(EdgeListIo, RoundTrip) {
  const dg::EdgeList edges = {{0, 1, 1.0}, {1, 2, 2.5}, {0, 3, 1.0}};
  dg::write_edge_list(path("g.txt"), edges);
  const auto back = dg::read_edge_list(path("g.txt"));
  EXPECT_EQ(back, edges);
}

TEST_F(EdgeListIo, CommentsAndDefaultsAndBlankLines) {
  std::ofstream out(path("g.txt"));
  out << "# comment\n% another style\n\n0 1\n2 3 4.5\n";
  out.close();
  const auto edges = dg::read_edge_list(path("g.txt"));
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_DOUBLE_EQ(edges[0].w, 1.0);
  EXPECT_DOUBLE_EQ(edges[1].w, 4.5);
}

TEST_F(EdgeListIo, MalformedLineReportsLineNumber) {
  std::ofstream out(path("bad.txt"));
  out << "0 1\nnot numbers\n";
  out.close();
  try {
    (void)dg::read_edge_list(path("bad.txt"));
    FAIL() << "should throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(":2"), std::string::npos);
  }
}

TEST_F(EdgeListIo, NegativeWeightRejected) {
  std::ofstream out(path("neg.txt"));
  out << "0 1 -3\n";
  out.close();
  EXPECT_THROW((void)dg::read_edge_list(path("neg.txt")), std::runtime_error);
}

TEST_F(EdgeListIo, MissingFileThrows) {
  EXPECT_THROW((void)dg::read_edge_list(path("nope.txt")), std::runtime_error);
}

TEST_F(EdgeListIo, BinaryRoundTrip) {
  const dg::EdgeList edges = {{0, 1, 1.0}, {1, 2, 2.5}, {100000, 3, 0.125}};
  dg::write_edge_list_binary(path("g.bin"), edges);
  EXPECT_EQ(dg::read_edge_list_binary(path("g.bin")), edges);
}

TEST_F(EdgeListIo, BinaryRejectsWrongMagic) {
  std::ofstream out(path("bad.bin"), std::ios::binary);
  out << "NOPEnope";
  out.close();
  EXPECT_THROW((void)dg::read_edge_list_binary(path("bad.bin")),
               std::runtime_error);
}

TEST_F(EdgeListIo, BinaryRejectsTruncation) {
  const dg::EdgeList edges = {{0, 1, 1.0}, {1, 2, 2.5}};
  dg::write_edge_list_binary(path("t.bin"), edges);
  // Chop the last 8 bytes off.
  const auto full = std::filesystem::file_size(path("t.bin"));
  std::filesystem::resize_file(path("t.bin"), full - 8);
  EXPECT_THROW((void)dg::read_edge_list_binary(path("t.bin")),
               std::runtime_error);
}

TEST_F(ClusteringIo, RoundTrip) {
  const dg::Partition p = {0, 0, 1, 2, 1};
  dio::write_clustering(path("c.txt"), p);
  EXPECT_EQ(dio::read_clustering(path("c.txt")), p);
}

TEST_F(ClusteringIo, MissingVertexDetected) {
  std::ofstream out(path("c.txt"));
  out << "0 0\n2 1\n";  // vertex 1 missing
  out.close();
  EXPECT_THROW((void)dio::read_clustering(path("c.txt")), std::runtime_error);
}

TEST(Datasets, RegistryCoversTableOne) {
  const auto& reg = dio::dataset_registry();
  EXPECT_EQ(reg.size(), 9u);  // the nine Table 1 rows
  for (const auto& spec : reg) {
    EXPECT_FALSE(spec.name.empty());
    EXPECT_FALSE(spec.paper_name.empty());
  }
}

TEST(Datasets, SpecLookup) {
  EXPECT_EQ(dio::dataset_spec("amazon").paper_name, "Amazon");
  EXPECT_THROW(dio::dataset_spec("nosuch"), std::out_of_range);
}

TEST(Datasets, LoadsAreDeterministic) {
  const auto a = dio::load_dataset("amazon");
  const auto b = dio::load_dataset("amazon");
  EXPECT_EQ(a.edges, b.edges);
}

TEST(Datasets, GroundTruthFlagsAccurate) {
  for (const auto& spec : dio::dataset_registry()) {
    if (spec.size != dio::DatasetSpec::Size::kSmall) continue;  // keep it fast
    const auto g = dio::load_dataset(spec.name);
    EXPECT_EQ(g.ground_truth.has_value(), spec.has_ground_truth) << spec.name;
    const auto csr = dg::build_csr(g.edges, g.num_vertices);
    EXPECT_GT(csr.num_edges(), 0u);
  }
}
