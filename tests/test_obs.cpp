// Flight-recorder tests: trace JSON well-formedness (checked with a tiny
// in-test JSON parser, no external dependency), histogram bucket edges, the
// run-report schema round-trip, watchdog verdicts on synthetic round streams,
// the log-sink hook, and the determinism contract — tracing on vs off must
// be bit-identical even under comm chaos.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/dist_infomap.hpp"
#include "graph/builder.hpp"
#include "graph/gen/generators.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"
#include "util/flat_map.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace dc = dinfomap::core;
namespace dg = dinfomap::graph;
namespace du = dinfomap::util;
namespace obs = dinfomap::obs;
namespace gen = dinfomap::graph::gen;

namespace {

// --- tiny JSON parser -------------------------------------------------------
// Just enough JSON to validate the exporters: objects, arrays, strings with
// the escapes our serializers emit, numbers, booleans, null. Returns nullopt
// on any syntax error, which the tests treat as "output is not valid JSON".

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  [[nodiscard]] bool is(Type t) const { return type == t; }
  [[nodiscard]] const JsonValue* get(const std::string& key) const {
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  std::optional<JsonValue> parse() {
    JsonValue v;
    if (!value(v)) return std::nullopt;
    ws();
    if (pos_ != s_.size()) return std::nullopt;
    return v;
  }

 private:
  void ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r'))
      ++pos_;
  }
  bool eat(char c) {
    ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p, ++pos_)
      if (pos_ >= s_.size() || s_[pos_] != *p) return false;
    return true;
  }
  bool string(std::string& out) {
    if (!eat('"')) return false;
    out.clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u':
            if (pos_ + 4 > s_.size()) return false;
            pos_ += 4;  // validated but not decoded; exporters never emit it
            out += '?';
            break;
          default: return false;
        }
      } else {
        out += c;
      }
    }
    return false;  // unterminated
  }
  bool value(JsonValue& out) {
    ws();
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == '{') {
      ++pos_;
      out.type = JsonValue::Type::kObject;
      ws();
      if (eat('}')) return true;
      while (true) {
        std::string key;
        ws();
        if (!string(key)) return false;
        if (!eat(':')) return false;
        JsonValue child;
        if (!value(child)) return false;
        out.object.emplace(std::move(key), std::move(child));
        if (eat(',')) continue;
        return eat('}');
      }
    }
    if (c == '[') {
      ++pos_;
      out.type = JsonValue::Type::kArray;
      ws();
      if (eat(']')) return true;
      while (true) {
        JsonValue child;
        if (!value(child)) return false;
        out.array.push_back(std::move(child));
        if (eat(',')) continue;
        return eat(']');
      }
    }
    if (c == '"') {
      out.type = JsonValue::Type::kString;
      return string(out.str);
    }
    if (c == 't') {
      out.type = JsonValue::Type::kBool;
      out.boolean = true;
      return literal("true");
    }
    if (c == 'f') {
      out.type = JsonValue::Type::kBool;
      out.boolean = false;
      return literal("false");
    }
    if (c == 'n') {
      out.type = JsonValue::Type::kNull;
      return literal("null");
    }
    // number
    const char* start = s_.c_str() + pos_;
    char* end = nullptr;
    out.number = std::strtod(start, &end);
    if (end == start) return false;
    pos_ += static_cast<std::size_t>(end - start);
    out.type = JsonValue::Type::kNumber;
    return true;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

std::optional<JsonValue> parse_json(const std::string& text) {
  return JsonParser(text).parse();
}

dg::Csr small_graph(std::uint64_t seed) {
  const auto gg = gen::sbm(300, 10, 0.2, 0.01, seed);
  return dg::build_csr(gg.edges, gg.num_vertices);
}

}  // namespace

// --- JSON parser sanity -----------------------------------------------------

TEST(MiniJson, AcceptsValidRejectsBroken) {
  auto v = parse_json(R"({"a": [1, 2.5, "x\"y", true, null], "b": {}})");
  ASSERT_TRUE(v.has_value());
  ASSERT_TRUE(v->is(JsonValue::Type::kObject));
  const JsonValue* a = v->get("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->array.size(), 5u);
  EXPECT_DOUBLE_EQ(a->array[1].number, 2.5);
  EXPECT_EQ(a->array[2].str, "x\"y");
  EXPECT_FALSE(parse_json("{\"a\": }").has_value());
  EXPECT_FALSE(parse_json("[1, 2").has_value());
  EXPECT_FALSE(parse_json("{} trailing").has_value());
}

// --- histogram --------------------------------------------------------------

TEST(Histogram, BucketEdges) {
  using H = obs::Histogram;
  EXPECT_EQ(H::bucket_of(0), 0);
  EXPECT_EQ(H::bucket_of(1), 1);
  EXPECT_EQ(H::bucket_of(2), 2);
  EXPECT_EQ(H::bucket_of(3), 2);
  EXPECT_EQ(H::bucket_of(4), 3);
  EXPECT_EQ(H::bucket_of(255), 8);
  EXPECT_EQ(H::bucket_of(256), 9);
  EXPECT_EQ(H::bucket_of(~std::uint64_t{0}), 64);
  // Edges are consistent: both edges of every bucket map back into it, and
  // consecutive buckets tile the range without gap or overlap.
  for (int b = 0; b < H::kNumBuckets; ++b) {
    EXPECT_EQ(H::bucket_of(H::bucket_low(b)), b) << "b=" << b;
    EXPECT_EQ(H::bucket_of(H::bucket_high(b)), b) << "b=" << b;
    if (b >= 2) {
      EXPECT_EQ(H::bucket_low(b), H::bucket_high(b - 1) + 1) << "b=" << b;
    }
  }
}

TEST(Histogram, ObserveAccumulates) {
  obs::Histogram h;
  h.observe(0);
  h.observe(1);
  h.observe(7);
  h.observe(7);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 15u);
  EXPECT_EQ(h.max(), 7u);
  EXPECT_DOUBLE_EQ(h.mean(), 3.75);
  EXPECT_EQ(h.buckets()[0], 1u);
  EXPECT_EQ(h.buckets()[1], 1u);
  EXPECT_EQ(h.buckets()[3], 2u);  // 7 has bit width 3
}

TEST(Histogram, QuantilesInterpolateWithinBuckets) {
  obs::Histogram h;
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);  // empty
  // 100 zeros: every quantile is exactly 0 (bucket 0 holds one value).
  for (int i = 0; i < 100; ++i) h.observe(0);
  EXPECT_DOUBLE_EQ(h.p50(), 0.0);
  EXPECT_DOUBLE_EQ(h.p99(), 0.0);
  // Add 100 samples of value 1000 (bucket [512, 1023]): the median sits at
  // the zeros/thousands boundary, p90 and p99 inside the upper bucket.
  for (int i = 0; i < 100; ++i) h.observe(1000);
  EXPECT_DOUBLE_EQ(h.p50(), 0.0);  // 100th of 200 samples is still a zero
  EXPECT_GE(h.p90(), 512.0);
  EXPECT_LE(h.p90(), 1000.0);  // clamped to the observed max, not bucket_high
  EXPECT_GE(h.p99(), h.p90());
  EXPECT_LE(h.p99(), 1000.0);
  // Quantiles are monotone in q and clamp out-of-range q.
  EXPECT_LE(h.quantile(0.25), h.quantile(0.75));
  EXPECT_DOUBLE_EQ(h.quantile(-1.0), h.quantile(0.0));
  EXPECT_DOUBLE_EQ(h.quantile(2.0), h.quantile(1.0));
  // Single-sample histogram: every quantile is that sample.
  obs::Histogram one;
  one.observe(42);
  EXPECT_DOUBLE_EQ(one.p50(), 42.0);
  EXPECT_DOUBLE_EQ(one.p99(), 42.0);
}

// --- metrics registry -------------------------------------------------------

TEST(Metrics, RegistryAbsorbsAndSerializes) {
  obs::MetricsRegistry reg;
  reg.counter("z.last").inc(3);
  reg.counter("a.first").inc();
  reg.gauge("table.size").set(42.0);
  reg.histogram("msg").observe(100);

  dinfomap::comm::CommCounters cc;
  cc.p2p_messages = 7;
  cc.p2p_bytes = 512;
  reg.absorb(cc, "comm");
  dinfomap::perf::WorkCounters wc;
  wc.arcs_scanned = 99;
  reg.absorb(wc, "work");

  const auto doc = parse_json(reg.to_json());
  ASSERT_TRUE(doc.has_value()) << reg.to_json();
  const JsonValue* counters = doc->get("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_DOUBLE_EQ(counters->get("comm.p2p_messages")->number, 7);
  EXPECT_DOUBLE_EQ(counters->get("comm.p2p_bytes")->number, 512);
  EXPECT_DOUBLE_EQ(counters->get("work.arcs_scanned")->number, 99);
  EXPECT_DOUBLE_EQ(counters->get("a.first")->number, 1);
  EXPECT_DOUBLE_EQ(doc->get("gauges")->get("table.size")->number, 42.0);
  const JsonValue* hist = doc->get("histograms")->get("msg");
  ASSERT_NE(hist, nullptr);
  EXPECT_DOUBLE_EQ(hist->get("count")->number, 1);
  EXPECT_DOUBLE_EQ(hist->get("sum")->number, 100);
  // Sorted emission: "a.first" precedes "z.last" in the raw text.
  const std::string raw = reg.to_json();
  EXPECT_LT(raw.find("a.first"), raw.find("z.last"));
  // Histograms carry the percentile accessors into the dump.
  const JsonValue* msg = doc->get("histograms")->get("msg");
  EXPECT_DOUBLE_EQ(msg->get("p50")->number, 100.0);
  EXPECT_DOUBLE_EQ(msg->get("p99")->number, 100.0);
}

TEST(Metrics, JsonExportIsByteStableAcrossInsertionOrder) {
  // Same metrics registered in opposite orders must serialize to the same
  // bytes — the artifact diffs in CI depend on it.
  obs::MetricsRegistry a;
  a.counter("alpha").inc(1);
  a.counter("beta").inc(2);
  a.gauge("g1").set(1.5);
  a.histogram("h").observe(9);
  obs::MetricsRegistry b;
  b.histogram("h").observe(9);
  b.gauge("g1").set(1.5);
  b.counter("beta").inc(2);
  b.counter("alpha").inc(1);
  EXPECT_EQ(a.to_json(), b.to_json());
  // And repeated serialization of the same registry is identical.
  EXPECT_EQ(a.to_json(), a.to_json());
}

// --- flat-map probe diagnostics ---------------------------------------------

TEST(FlatMapProbe, ProbeLengthPositiveForPresentZeroForAbsent) {
  du::FlatMap<std::uint64_t, int> m;
  for (std::uint64_t k = 0; k < 64; ++k) m[k * 3] = static_cast<int>(k);
  for (std::uint64_t k = 0; k < 64; ++k)
    EXPECT_GE(m.probe_length(k * 3), 1u) << "k=" << k;
  EXPECT_EQ(m.probe_length(1), 0u);  // absent key
  du::FlatMap<std::uint64_t, int> empty;
  EXPECT_EQ(empty.probe_length(5), 0u);
}

// --- watchdog ---------------------------------------------------------------

namespace {
obs::RoundSample sample(int level, int round, double L, std::uint64_t work) {
  obs::RoundSample s;
  s.level = level;
  s.round = round;
  s.codelength = L;
  s.moves = 1;
  s.rank_work = work;
  return s;
}
}  // namespace

TEST(Watchdog, CleanStreamsProduceNoAnomalies) {
  std::vector<std::vector<obs::RoundSample>> streams(2);
  for (int r = 0; r < 2; ++r)
    for (int i = 0; i < 4; ++i)
      streams[static_cast<std::size_t>(r)].push_back(
          sample(0, i, 5.0 - i * 0.1, 2000));
  EXPECT_TRUE(obs::analyze_rounds(streams, {}).empty());
}

TEST(Watchdog, FlagsMdlRegression) {
  std::vector<std::vector<obs::RoundSample>> streams(1);
  streams[0] = {sample(0, 0, 5.0, 0), sample(0, 1, 4.0, 0),
                sample(1, 2, 4.5, 0)};
  const auto anomalies = obs::analyze_rounds(streams, {});
  ASSERT_EQ(anomalies.size(), 1u);
  EXPECT_EQ(anomalies[0].kind, "mdl_regression");
  EXPECT_EQ(anomalies[0].rank, -1);
  EXPECT_EQ(anomalies[0].level, 1);
  EXPECT_EQ(anomalies[0].round, 2);
}

TEST(Watchdog, ToleratesRegressionWithinTolerance) {
  std::vector<std::vector<obs::RoundSample>> streams(1);
  streams[0] = {sample(0, 0, 5.0, 0), sample(0, 1, 5.0 + 1e-9, 0)};
  EXPECT_TRUE(obs::analyze_rounds(streams, {}).empty());
}

TEST(Watchdog, FlagsWorkSkewAboveThreshold) {
  std::vector<std::vector<obs::RoundSample>> streams(4);
  const std::uint64_t works[4] = {10000, 0, 0, 0};
  for (int r = 0; r < 4; ++r)
    streams[static_cast<std::size_t>(r)].push_back(sample(0, 0, 3.0, works[r]));
  obs::WatchdogOptions opt;
  opt.skew_threshold = 2.0;
  const auto anomalies = obs::analyze_rounds(streams, opt);
  ASSERT_EQ(anomalies.size(), 1u);
  EXPECT_EQ(anomalies[0].kind, "work_skew");
  EXPECT_EQ(anomalies[0].rank, 0);
}

TEST(Watchdog, SkipsSkewOnTinyRounds) {
  std::vector<std::vector<obs::RoundSample>> streams(4);
  const std::uint64_t works[4] = {100, 0, 0, 0};  // mean far below min_skew_work
  for (int r = 0; r < 4; ++r)
    streams[static_cast<std::size_t>(r)].push_back(sample(0, 0, 3.0, works[r]));
  obs::WatchdogOptions opt;
  opt.skew_threshold = 2.0;
  EXPECT_TRUE(obs::analyze_rounds(streams, opt).empty());
}

TEST(Watchdog, FlagsRaggedStreams) {
  std::vector<std::vector<obs::RoundSample>> streams(2);
  streams[0] = {sample(0, 0, 5.0, 0), sample(0, 1, 4.9, 0)};
  streams[1] = {sample(0, 0, 5.0, 0)};
  const auto anomalies = obs::analyze_rounds(streams, {});
  ASSERT_EQ(anomalies.size(), 1u);
  EXPECT_EQ(anomalies[0].kind, "ragged_round_stream");
  EXPECT_EQ(anomalies[0].rank, 1);
}

// --- recorder ---------------------------------------------------------------

TEST(Recorder, DisabledRecorderIsInert) {
  obs::ObsOptions opt;  // enabled = false
  obs::Recorder rec(4, opt);
  EXPECT_EQ(rec.track(0), nullptr);
  EXPECT_EQ(rec.metrics(0), nullptr);
  rec.record_round(0, sample(0, 0, 1.0, 0));  // no-op
  EXPECT_TRUE(rec.round_streams()[0].empty());
  rec.finish_watchdog();
  EXPECT_TRUE(rec.anomalies().empty());
  // SpanScope on a null buffer is a no-op, not a crash.
  { obs::SpanScope span(rec.track(0), "nothing"); }
}

TEST(Recorder, EnabledWithoutTraceStillHasMetrics) {
  obs::ObsOptions opt;
  opt.enabled = true;
  opt.trace = false;
  obs::Recorder rec(2, opt);
  EXPECT_EQ(rec.track(0), nullptr);
  ASSERT_NE(rec.metrics(1), nullptr);
  rec.metrics(1)->counter("x").inc();
  EXPECT_EQ(rec.all_metrics()[1].counters().at("x").value, 1u);
}

TEST(Recorder, InlineAnomaliesPrecedeWatchdogFindings) {
  obs::ObsOptions opt;
  opt.enabled = true;
  obs::Recorder rec(2, opt);
  obs::Anomaly inline_a;
  inline_a.rank = 1;
  inline_a.kind = "issent_dedup_violation";
  rec.report_anomaly(1, inline_a);
  rec.record_round(0, sample(0, 0, 5.0, 0));
  rec.record_round(0, sample(0, 1, 6.0, 0));  // regression
  rec.record_round(1, sample(0, 0, 5.0, 0));
  rec.record_round(1, sample(0, 1, 6.0, 0));
  rec.finish_watchdog();
  const auto all = rec.anomalies();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].kind, "issent_dedup_violation");
  EXPECT_EQ(all[1].kind, "mdl_regression");
}

// --- trace export -----------------------------------------------------------

TEST(Trace, SpanScopeRecordsBalancedPairsAndDisabledRecordsNothing) {
  obs::Trace on(1, /*enabled=*/true);
  {
    obs::SpanScope outer(&on.track(0), "outer");
    obs::SpanScope inner(&on.track(0), "inner");
    on.track(0).instant("marker");
    on.track(0).counter("value", 3.5);
  }
  const auto& ev = on.track(0).events();
  ASSERT_EQ(ev.size(), 6u);
  EXPECT_EQ(ev[0].kind, obs::TraceEvent::Kind::kBegin);
  EXPECT_STREQ(ev[5].name, "outer");
  EXPECT_EQ(ev[5].kind, obs::TraceEvent::Kind::kEnd);

  obs::Trace off(1, /*enabled=*/false);
  { obs::SpanScope span(&off.track(0), "dead"); }
  EXPECT_TRUE(off.track(0).events().empty());
}

TEST(Trace, PipelineTraceIsWellFormedChromeJson) {
  const auto g = small_graph(7);
  const int p = 4;
  dc::DistInfomapConfig cfg;
  cfg.num_ranks = p;
  cfg.obs.enabled = true;
  const auto result = dc::distributed_infomap(g, cfg);
  (void)result;

  // Re-run through the public path with a trace file to exercise write().
  const std::string path = testing::TempDir() + "/dinfomap_trace.json";
  cfg.obs.trace_path = path;
  (void)dc::distributed_infomap(g, cfg);

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "trace file not written: " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const auto doc = parse_json(buffer.str());
  ASSERT_TRUE(doc.has_value()) << "trace is not valid JSON";
  const JsonValue* events = doc->get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is(JsonValue::Type::kArray));

  // One thread_name metadata record per rank; spans balance per track; all
  // four paper phases appear.
  std::map<int, int> named_tracks;
  std::map<int, std::vector<std::string>> open_spans;
  std::map<std::string, int> begin_names;
  for (const JsonValue& e : events->array) {
    ASSERT_TRUE(e.is(JsonValue::Type::kObject));
    const std::string ph = e.get("ph")->str;
    const int tid = static_cast<int>(e.get("tid")->number);
    const std::string name = e.get("name")->str;
    if (ph == "M") {
      EXPECT_EQ(name, "thread_name");
      ++named_tracks[tid];
    } else if (ph == "B") {
      open_spans[tid].push_back(name);
      ++begin_names[name];
    } else if (ph == "E") {
      ASSERT_FALSE(open_spans[tid].empty())
          << "E without matching B on tid " << tid;
      EXPECT_EQ(open_spans[tid].back(), name);
      open_spans[tid].pop_back();
    } else if (ph == "s" || ph == "f") {
      // Flow events (message arrows): both ends carry the shared id and the
      // "msg" category; the finish half binds to its enclosing slice.
      EXPECT_EQ(name, "msg");
      ASSERT_NE(e.get("id"), nullptr);
      ASSERT_NE(e.get("cat"), nullptr);
      EXPECT_EQ(e.get("cat")->str, "msg");
      if (ph == "f") {
        EXPECT_EQ(e.get("bp")->str, "e");
      }
    } else {
      EXPECT_TRUE(ph == "i" || ph == "C") << "unexpected ph " << ph;
    }
  }
  EXPECT_EQ(named_tracks.size(), static_cast<std::size_t>(p));
  for (const auto& [tid, stack] : open_spans)
    EXPECT_TRUE(stack.empty()) << "unclosed span on tid " << tid;
  for (const char* phase : dc::kPhaseNames)
    EXPECT_GT(begin_names[phase], 0) << "phase " << phase << " never traced";
  EXPECT_GT(begin_names["MergeLevel"], 0);
  EXPECT_GT(begin_names["Setup"], 0);
}

// --- run report -------------------------------------------------------------

TEST(RunReport, SchemaRoundTripIsExact) {
  obs::RunReport rep;
  rep.add_config("num_ranks", 4);
  rep.add_config("theta", 1e-10);
  rep.add_config("min_label", true);
  rep.add_config("note", "quote\"and\\slash");
  rep.graph_vertices = 300;
  rep.graph_edges = 1234;
  rep.num_ranks = 4;
  rep.codelength = 0.1 + 0.2;  // awkward double: round-trip must be bitwise
  rep.singleton_codelength = 8.25;
  rep.num_modules = 11;
  obs::RunReport::LevelRow lr;
  lr.level = 0;
  lr.vertices = 300;
  lr.rounds = 5;
  lr.moves = 250;
  lr.codelength_before = 8.25;
  lr.codelength_after = rep.codelength;
  lr.num_modules = 11;
  rep.levels.push_back(lr);
  rep.round_codelengths = {8.0, 7.5, rep.codelength};
  rep.stage1_rounds = 5;
  rep.phases.push_back({"FindBestModule",
                        std::vector<dinfomap::perf::WorkCounters>(4),
                        std::vector<double>(4, 0.125)});
  rep.stage_work[0].resize(4);
  rep.stage_work[1].resize(4);
  rep.comm.resize(4);
  rep.metrics_json.push_back("{\"counters\": {}}");
  obs::Anomaly a;
  a.rank = 2;
  a.level = 1;
  a.round = 3;
  a.kind = "work_skew";
  a.detail = "rank 2 did \"everything\"";
  rep.anomalies.push_back(a);

  const auto doc = parse_json(rep.to_json());
  ASSERT_TRUE(doc.has_value()) << rep.to_json();
  EXPECT_EQ(doc->get("schema")->str, obs::kRunReportSchema);
  EXPECT_EQ(doc->get("algorithm")->str, "distributed_infomap");
  EXPECT_DOUBLE_EQ(doc->get("config")->get("num_ranks")->number, 4);
  EXPECT_EQ(doc->get("config")->get("min_label")->boolean, true);
  EXPECT_EQ(doc->get("config")->get("note")->str, "quote\"and\\slash");
  // precision-17 serialization: the parsed double is bit-identical.
  EXPECT_EQ(doc->get("codelength")->number, rep.codelength);
  EXPECT_EQ(doc->get("round_codelengths")->array[2].number, rep.codelength);
  EXPECT_DOUBLE_EQ(doc->get("graph")->get("edges")->number, 1234);
  ASSERT_EQ(doc->get("levels")->array.size(), 1u);
  EXPECT_DOUBLE_EQ(doc->get("levels")->array[0].get("moves")->number, 250);
  ASSERT_EQ(doc->get("phases")->array.size(), 1u);
  EXPECT_EQ(doc->get("phases")->array[0].get("name")->str, "FindBestModule");
  EXPECT_EQ(doc->get("phases")->array[0].get("work")->array.size(), 4u);
  ASSERT_EQ(doc->get("anomalies")->array.size(), 1u);
  EXPECT_EQ(doc->get("anomalies")->array[0].get("kind")->str, "work_skew");
  EXPECT_EQ(doc->get("anomalies")->array[0].get("detail")->str,
            "rank 2 did \"everything\"");
}

TEST(RunReport, FilledByDistributedRun) {
  const auto g = small_graph(3);
  const int p = 4;
  dc::DistInfomapConfig cfg;
  cfg.num_ranks = p;
  cfg.obs.enabled = true;
  const auto result = dc::distributed_infomap(g, cfg);
  const obs::RunReport& rep = result.report;
  EXPECT_EQ(rep.schema, obs::kRunReportSchema);
  EXPECT_EQ(rep.num_ranks, p);
  EXPECT_EQ(rep.graph_vertices, g.num_vertices());
  EXPECT_EQ(rep.codelength, result.codelength);
  ASSERT_EQ(rep.phases.size(), static_cast<std::size_t>(dc::kNumPhases));
  for (const auto& ph : rep.phases) {
    EXPECT_EQ(ph.work.size(), static_cast<std::size_t>(p));
    EXPECT_EQ(ph.seconds.size(), static_cast<std::size_t>(p));
  }
  EXPECT_EQ(rep.comm.size(), static_cast<std::size_t>(p));
  EXPECT_EQ(rep.metrics_json.size(), static_cast<std::size_t>(p));
  EXPECT_FALSE(rep.levels.empty());
  EXPECT_EQ(rep.round_codelengths.size(),
            static_cast<std::size_t>(rep.stage1_rounds));
  // Each rank's metrics dump is itself valid JSON with the comm histogram.
  for (const auto& mj : rep.metrics_json) {
    const auto doc = parse_json(mj);
    ASSERT_TRUE(doc.has_value()) << mj;
    EXPECT_NE(doc->get("histograms")->get("comm.msg_bytes"), nullptr);
    EXPECT_NE(doc->get("histograms")->get("module_table.probe_len"), nullptr);
    EXPECT_NE(doc->get("counters")->get("comm.p2p_messages"), nullptr);
  }
  // Conflicting synchronous moves can overshoot L by a hair, so a real run
  // may legitimately trip the MDL watchdog — and a test-scale run is all
  // startup collectives, so the profile rules (wait_dominated,
  // straggler_skew) can fire too; anything else would be a bug.
  for (const auto& a : rep.anomalies)
    EXPECT_TRUE(a.kind == "mdl_regression" || a.kind == "wait_dominated" ||
                a.kind == "straggler_skew")
        << a.kind;

  // Disabled recorder still yields the structural sections (no metrics).
  cfg.obs.enabled = false;
  const auto off = dc::distributed_infomap(g, cfg);
  EXPECT_EQ(off.report.schema, obs::kRunReportSchema);
  ASSERT_EQ(off.report.phases.size(), static_cast<std::size_t>(dc::kNumPhases));
  EXPECT_TRUE(off.report.metrics_json.empty());
}

// --- log sink ----------------------------------------------------------------

TEST(Logging, SinkCapturesLevelAndThreadRank) {
  struct Line {
    du::LogLevel level;
    std::string message;
    int rank;
  };
  std::vector<Line> captured;
  du::set_log_sink([&](du::LogLevel level, const std::string& message) {
    captured.push_back({level, message, du::thread_rank()});
  });
  {
    du::ScopedThreadRank tag(3);
    LOG_WARN << "boundary swap fell behind";
  }
  LOG_ERROR << "driver failed";
  du::set_log_sink(nullptr);
  LOG_WARN << "back on stderr";  // must not reach the removed sink

  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0].level, du::LogLevel::kWarn);
  EXPECT_EQ(captured[0].message, "boundary swap fell behind");
  EXPECT_EQ(captured[0].rank, 3);
  EXPECT_EQ(captured[1].level, du::LogLevel::kError);
  EXPECT_EQ(captured[1].rank, -1);
}

TEST(Logging, WatchdogWarningsReachTheSink) {
  std::vector<std::string> warnings;
  du::set_log_sink([&](du::LogLevel level, const std::string& message) {
    if (level == du::LogLevel::kWarn) warnings.push_back(message);
  });
  obs::ObsOptions opt;
  opt.enabled = true;
  obs::Recorder rec(1, opt);
  rec.record_round(0, sample(0, 0, 5.0, 0));
  rec.record_round(0, sample(0, 1, 6.0, 0));
  rec.finish_watchdog();
  du::set_log_sink(nullptr);
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_NE(warnings[0].find("mdl_regression"), std::string::npos);
}

// --- determinism: observability must not perturb results --------------------

TEST(ObsDeterminism, TracingOnOffBitIdenticalUnderChaos) {
  const auto gg = gen::lfr_lite({}, 29);
  const auto g = dg::build_csr(gg.edges, gg.num_vertices);
  for (int p : {4, 5}) {
    dc::DistInfomapConfig cfg;
    cfg.num_ranks = p;
    cfg.chaos_delay_us = 40;
    cfg.obs.enabled = false;
    const auto off = dc::distributed_infomap(g, cfg);
    cfg.obs.enabled = true;
    cfg.chaos_delay_us = 90;  // different timing AND tracing: same answer
    const auto on = dc::distributed_infomap(g, cfg);
    EXPECT_EQ(off.assignment, on.assignment) << "p=" << p;
    EXPECT_DOUBLE_EQ(off.codelength, on.codelength) << "p=" << p;
    EXPECT_EQ(off.stage1_rounds, on.stage1_rounds) << "p=" << p;
  }
}

// --- pipeline smoke: trace + report files, bounded overhead -----------------

TEST(ObsPipeline, TraceAndReportFilesValidAndOverheadBounded) {
  const auto gg = gen::lfr_lite({}, 17);
  const auto g = dg::build_csr(gg.edges, gg.num_vertices);
  dc::DistInfomapConfig cfg;
  cfg.num_ranks = 4;

  // Timing is noisy at test scale: take the min of repeated runs and allow an
  // absolute epsilon on top of the 5% ratio. The structural claim — disabled
  // sites are a null-pointer test, enabled recording is a vector append —
  // is what keeps the real overhead low; this guards against regressions
  // that would make tracing grossly expensive.
  constexpr int kRepeats = 3;
  double off_min = 1e100;
  for (int i = 0; i < kRepeats; ++i) {
    du::Timer t;
    (void)dc::distributed_infomap(g, cfg);
    off_min = std::min(off_min, t.seconds());
  }

  const std::string trace_path = testing::TempDir() + "/obs_pipeline_trace.json";
  const std::string report_path =
      testing::TempDir() + "/obs_pipeline_report.json";
  cfg.obs.enabled = true;
  cfg.obs.trace_path = trace_path;
  cfg.obs.report_path = report_path;
  double on_min = 1e100;
  for (int i = 0; i < kRepeats; ++i) {
    du::Timer t;
    (void)dc::distributed_infomap(g, cfg);
    on_min = std::min(on_min, t.seconds());
  }
  EXPECT_LT(on_min, off_min * 1.05 + 0.05)
      << "tracing overhead too high: off=" << off_min << "s on=" << on_min
      << "s";

  for (const std::string& path : {trace_path, report_path}) {
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << path << " not written";
    std::stringstream buffer;
    buffer << in.rdbuf();
    const auto doc = parse_json(buffer.str());
    ASSERT_TRUE(doc.has_value()) << path << " is not valid JSON";
  }
}
