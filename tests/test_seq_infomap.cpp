#include <gtest/gtest.h>

#include "core/flowgraph.hpp"
#include "core/seq_infomap.hpp"
#include "graph/builder.hpp"
#include "graph/gen/generators.hpp"
#include "quality/metrics.hpp"

namespace dc = dinfomap::core;
namespace dg = dinfomap::graph;
namespace gen = dinfomap::graph::gen;

TEST(SeqInfomap, RecoversRingOfCliques) {
  const auto gg = gen::ring_of_cliques(8, 5, 0);
  const auto g = dg::build_csr(gg.edges, gg.num_vertices);
  const auto result = dc::sequential_infomap(g);
  EXPECT_EQ(result.num_modules(), 8u);
  EXPECT_DOUBLE_EQ(dinfomap::quality::nmi(result.assignment, *gg.ground_truth), 1.0);
}

TEST(SeqInfomap, ImprovesOnSingletons) {
  const auto gg = gen::lfr_lite({}, 11);
  const auto g = dg::build_csr(gg.edges, gg.num_vertices);
  const auto result = dc::sequential_infomap(g);
  EXPECT_LT(result.codelength, result.singleton_codelength);
}

TEST(SeqInfomap, ReportedCodelengthMatchesAssignment) {
  const auto gg = gen::sbm(300, 5, 0.2, 0.01, 13);
  const auto g = dg::build_csr(gg.edges, gg.num_vertices);
  const auto result = dc::sequential_infomap(g);
  const auto fg = dc::make_flow_graph(g);
  EXPECT_NEAR(result.codelength,
              dc::codelength_of_partition(fg, result.assignment), 1e-9);
}

TEST(SeqInfomap, HighNmiOnPlantedSbm) {
  const auto gg = gen::sbm(400, 8, 0.25, 0.005, 21);
  const auto g = dg::build_csr(gg.edges, gg.num_vertices);
  const auto result = dc::sequential_infomap(g);
  EXPECT_GT(dinfomap::quality::nmi(result.assignment, *gg.ground_truth), 0.9);
}

TEST(SeqInfomap, DeterministicForFixedSeed) {
  const auto gg = gen::lfr_lite({}, 31);
  const auto g = dg::build_csr(gg.edges, gg.num_vertices);
  dc::InfomapConfig cfg;
  cfg.seed = 7;
  const auto a = dc::sequential_infomap(g, cfg);
  const auto b = dc::sequential_infomap(g, cfg);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_DOUBLE_EQ(a.codelength, b.codelength);
}

TEST(SeqInfomap, TraceIsMonotoneNonIncreasing) {
  const auto gg = gen::lfr_lite({}, 17);
  const auto g = dg::build_csr(gg.edges, gg.num_vertices);
  const auto result = dc::sequential_infomap(g);
  ASSERT_FALSE(result.trace.empty());
  double prev = result.singleton_codelength + 1e-9;
  for (const auto& row : result.trace) {
    EXPECT_LE(row.codelength_after, row.codelength_before + 1e-9);
    EXPECT_LE(row.codelength_after, prev + 1e-9);
    prev = row.codelength_after;
  }
}

TEST(SeqInfomap, LevelHandoffIsConsistent) {
  // L after moves at level k == L at singleton init of level k+1.
  const auto gg = gen::sbm(300, 6, 0.2, 0.01, 5);
  const auto g = dg::build_csr(gg.edges, gg.num_vertices);
  const auto result = dc::sequential_infomap(g);
  for (std::size_t i = 1; i < result.trace.size(); ++i) {
    EXPECT_NEAR(result.trace[i - 1].codelength_after,
                result.trace[i].codelength_before, 1e-9);
  }
}

TEST(SeqInfomap, MergeRateDecreasesVertices) {
  const auto gg = gen::lfr_lite({}, 41);
  const auto g = dg::build_csr(gg.edges, gg.num_vertices);
  const auto result = dc::sequential_infomap(g);
  for (const auto& row : result.trace)
    EXPECT_LE(row.num_modules, row.level_vertices);
  EXPECT_LT(result.trace.front().num_modules,
            result.trace.front().level_vertices / 2);  // strong first merge
}

TEST(SeqInfomap, SingleEdgeGraph) {
  const auto g = dg::build_csr({{0, 1}});
  const auto result = dc::sequential_infomap(g);
  // Two vertices joined by one edge collapse into a single module.
  EXPECT_EQ(result.num_modules(), 1u);
}

TEST(SeqInfomap, StarGraphCollapses) {
  dg::EdgeList edges;
  for (dg::VertexId v = 1; v <= 6; ++v) edges.push_back({0, v});
  const auto result = dc::sequential_infomap(dg::build_csr(edges));
  EXPECT_EQ(result.num_modules(), 1u);
}

TEST(SeqInfomap, DisconnectedComponentsStaySeparate) {
  // Two disjoint triangles.
  const auto g = dg::build_csr({{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}});
  const auto result = dc::sequential_infomap(g);
  EXPECT_EQ(result.num_modules(), 2u);
  EXPECT_EQ(result.assignment[0], result.assignment[1]);
  EXPECT_NE(result.assignment[0], result.assignment[3]);
}

TEST(SeqInfomap, IsolatedVerticesKeepSingletons) {
  const auto g = dg::build_csr({{0, 1}, {1, 2}, {0, 2}}, 5);  // 3,4 isolated
  const auto result = dc::sequential_infomap(g);
  EXPECT_EQ(result.assignment.size(), 5u);
  EXPECT_NE(result.assignment[3], result.assignment[0]);
  EXPECT_NE(result.assignment[3], result.assignment[4]);
}

TEST(SeqInfomap, RespectsMaxIterations) {
  const auto gg = gen::lfr_lite({}, 3);
  const auto g = dg::build_csr(gg.edges, gg.num_vertices);
  dc::InfomapConfig cfg;
  cfg.max_outer_iterations = 1;
  const auto result = dc::sequential_infomap(g, cfg);
  EXPECT_EQ(result.trace.size(), 1u);
}

TEST(SeqInfomap, FineTuneNeverWorsens) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    const auto gg = gen::lfr_lite({}, seed);
    const auto g = dg::build_csr(gg.edges, gg.num_vertices);
    dc::InfomapConfig plain;
    plain.seed = seed;
    auto tuned_cfg = plain;
    tuned_cfg.fine_tune = true;
    const auto plain_result = dc::sequential_infomap(g, plain);
    const auto tuned = dc::sequential_infomap(g, tuned_cfg);
    EXPECT_LE(tuned.codelength, plain_result.codelength + 1e-12);
    // Tuned L must still equal the exact rescoring of its assignment.
    const auto fg = dc::make_flow_graph(g);
    EXPECT_NEAR(tuned.codelength,
                dc::codelength_of_partition(fg, tuned.assignment), 1e-9);
    // The final level snapshot tracks the tuned assignment.
    if (!tuned.level_assignments.empty()) {
      EXPECT_EQ(tuned.level_assignments.back(), tuned.assignment);
    }
  }
}

TEST(SeqInfomap, CoarseTuneNeverWorsens) {
  for (std::uint64_t seed : {5u, 6u, 7u}) {
    const auto gg = gen::lfr_lite({}, seed);
    const auto g = dg::build_csr(gg.edges, gg.num_vertices);
    dc::InfomapConfig plain;
    plain.seed = seed;
    auto tuned_cfg = plain;
    tuned_cfg.coarse_tune = true;
    const auto plain_result = dc::sequential_infomap(g, plain);
    const auto tuned = dc::sequential_infomap(g, tuned_cfg);
    EXPECT_LE(tuned.codelength, plain_result.codelength + 1e-12);
    const auto fg = dc::make_flow_graph(g);
    EXPECT_NEAR(tuned.codelength,
                dc::codelength_of_partition(fg, tuned.assignment), 1e-9);
  }
}

TEST(SeqInfomap, BothRefinementsCompose) {
  const auto gg = gen::sbm(300, 6, 0.2, 0.02, 9);
  const auto g = dg::build_csr(gg.edges, gg.num_vertices);
  dc::InfomapConfig cfg;
  cfg.fine_tune = true;
  cfg.coarse_tune = true;
  const auto result = dc::sequential_infomap(g, cfg);
  const auto fg = dc::make_flow_graph(g);
  EXPECT_NEAR(result.codelength,
              dc::codelength_of_partition(fg, result.assignment), 1e-9);
  EXPECT_LE(result.codelength, result.singleton_codelength);
}

class SeqInfomapSeeds : public ::testing::TestWithParam<std::uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, SeqInfomapSeeds,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

TEST_P(SeqInfomapSeeds, CodelengthNeverAboveSingletonBound) {
  const auto gg = gen::lfr_lite({}, GetParam());
  const auto g = dg::build_csr(gg.edges, gg.num_vertices);
  dc::InfomapConfig cfg;
  cfg.seed = GetParam() * 13;
  const auto result = dc::sequential_infomap(g, cfg);
  EXPECT_LE(result.codelength, result.singleton_codelength + 1e-9);
  // And the final assignment scores exactly the reported L.
  const auto fg = dc::make_flow_graph(g);
  EXPECT_NEAR(result.codelength,
              dc::codelength_of_partition(fg, result.assignment), 1e-9);
}
