// Stress tests of the comm substrate: randomized message storms, mixed
// collective sequences, and everything again under chaos delivery delays.
#include <gtest/gtest.h>

#include <numeric>

#include "comm/runtime.hpp"
#include "util/random.hpp"

namespace dc = dinfomap::comm;
namespace du = dinfomap::util;

namespace {
constexpr int kStormTag = 7;

/// Every rank sends a seeded-random batch of messages to random peers, then
/// receives exactly what was addressed to it. Totals are cross-checked with
/// an allreduce.
void message_storm(dc::Comm& comm, std::uint64_t seed) {
  const int p = comm.size();
  du::Xoshiro256 rng(du::derive_seed(seed, comm.rank()));

  // Plan: how many messages to each peer (every rank can recompute every
  // other rank's plan from the shared seed).
  auto plan_for = [&](int rank) {
    du::Xoshiro256 plan_rng(du::derive_seed(seed, rank) ^ 0xABCD);
    std::vector<int> counts(p);
    for (int dest = 0; dest < p; ++dest)
      counts[dest] = static_cast<int>(plan_rng.bounded(8));
    return counts;
  };

  const auto mine = plan_for(comm.rank());
  for (int dest = 0; dest < p; ++dest) {
    for (int k = 0; k < mine[dest]; ++k) {
      std::vector<std::uint64_t> payload(rng.bounded(64) + 1,
                                         static_cast<std::uint64_t>(comm.rank()));
      comm.send(dest, kStormTag, payload);
    }
  }
  // Receive everything addressed to us, from any source.
  int expected = 0;
  for (int src = 0; src < p; ++src) expected += plan_for(src)[comm.rank()];
  std::uint64_t received_words = 0;
  for (int i = 0; i < expected; ++i) {
    const auto payload = comm.recv<std::uint64_t>(dc::kAnySource, kStormTag);
    ASSERT_FALSE(payload.empty());
    // All words of one message carry the source rank.
    for (auto w : payload) ASSERT_EQ(w, payload.front());
    received_words += payload.size();
  }
  // Global conservation: words sent == words received.
  const auto sent_local = comm.allreduce(received_words, dc::ReduceOp::kSum);
  ASSERT_GT(sent_local, 0u);
}
}  // namespace

TEST(CommStress, MessageStormManyRanks) {
  for (int p : {2, 5, 12}) {
    dc::Runtime::run(p, [&](dc::Comm& comm) { message_storm(comm, 11); });
  }
}

TEST(CommStress, MessageStormUnderChaos) {
  dc::Runtime::Options options;
  options.chaos_max_delay_us = 30;
  dc::Runtime::run(
      6, [&](dc::Comm& comm) { message_storm(comm, 13); }, options);
}

TEST(CommStress, RandomCollectiveSequence) {
  // All ranks draw the same seeded sequence of collectives and execute it;
  // any mismatch would deadlock or corrupt payloads.
  const int p = 6;
  dc::Runtime::run(p, [p](dc::Comm& comm) {
    du::Xoshiro256 shared(99);  // same stream on every rank
    for (int step = 0; step < 60; ++step) {
      switch (shared.bounded(5)) {
        case 0: comm.barrier(); break;
        case 1: {
          const int root = static_cast<int>(shared.bounded(p));
          const int value = comm.bcast_value(root, comm.rank() == root ? step : -1);
          ASSERT_EQ(value, step);
          break;
        }
        case 2: {
          const auto all = comm.allgather_value(comm.rank() * 3);
          for (int r = 0; r < p; ++r) ASSERT_EQ(all[r], r * 3);
          break;
        }
        case 3: {
          const auto sum = comm.allreduce(1, dc::ReduceOp::kSum);
          ASSERT_EQ(sum, p);
          break;
        }
        case 4: {
          std::vector<std::vector<int>> out(p);
          for (int dest = 0; dest < p; ++dest) out[dest] = {comm.rank(), step};
          const auto in = comm.alltoallv(out);
          for (int src = 0; src < p; ++src) {
            ASSERT_EQ(in[src].size(), 2u);
            ASSERT_EQ(in[src][0], src);
            ASSERT_EQ(in[src][1], step);
          }
          break;
        }
      }
    }
  });
}

TEST(CommStress, CollectiveSequenceUnderChaos) {
  dc::Runtime::Options options;
  options.chaos_max_delay_us = 20;
  const int p = 4;
  dc::Runtime::run(
      p,
      [p](dc::Comm& comm) {
        for (int step = 0; step < 40; ++step) {
          const auto all = comm.allgatherv(std::vector<int>(comm.rank() + 1, step));
          for (int r = 0; r < p; ++r) {
            ASSERT_EQ(static_cast<int>(all[r].size()), r + 1);
            for (int x : all[r]) ASSERT_EQ(x, step);
          }
        }
      },
      options);
}

TEST(CommStress, LargePayloadIntegrity) {
  dc::Runtime::run(3, [](dc::Comm& comm) {
    // 4 MiB of patterned doubles through gather + bcast paths.
    std::vector<double> mine(1 << 19);
    std::iota(mine.begin(), mine.end(), static_cast<double>(comm.rank()) * 1e6);
    const auto all = comm.allgatherv(mine);
    for (int r = 0; r < 3; ++r) {
      ASSERT_EQ(all[r].size(), mine.size());
      ASSERT_DOUBLE_EQ(all[r].front(), r * 1e6);
      ASSERT_DOUBLE_EQ(all[r].back(), r * 1e6 + static_cast<double>(mine.size() - 1));
    }
  });
}
