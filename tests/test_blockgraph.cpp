// Out-of-core graph substrate (DESIGN.md §15): codec round trips over
// adversarial adjacency shapes, container-file validation, decode-cache
// bounds, and the headline guarantee — partitions and MDL are bit-identical
// whether the engines run on the resident Csr or the blocks backend.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "core/dist_infomap.hpp"
#include "core/dist_louvain.hpp"
#include "graph/blockgraph/blockgraph.hpp"
#include "graph/blockgraph/codec.hpp"
#include "graph/blockgraph/writer.hpp"
#include "graph/builder.hpp"
#include "graph/gen/generators.hpp"
#include "graph/graph_view.hpp"
#include "obs/watchdog.hpp"
#include "partition/arc_partition.hpp"
#include "perf/cost_model.hpp"
#include "perf/decode_cost.hpp"

namespace bg = dinfomap::graph::blockgraph;
namespace dc = dinfomap::core;
namespace dg = dinfomap::graph;
namespace gen = dinfomap::graph::gen;
namespace obs = dinfomap::obs;
namespace perf = dinfomap::perf;
namespace part = dinfomap::partition;

namespace {

class TempDir : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("dinfomap_bg_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }
  std::filesystem::path dir_;
};

using BlockFile = TempDir;
using BackendIdentity = TempDir;
using DecodeCost = TempDir;

/// Encode one block holding the given per-vertex adjacency and decode it
/// back; returns the decoded arcs for comparison against the input.
std::vector<dg::Neighbor> codec_round_trip(
    dg::VertexId first_vertex,
    const std::vector<std::vector<dg::Neighbor>>& adjacency) {
  std::vector<dg::EdgeIndex> off = {0};
  std::vector<dg::Neighbor> arcs;
  for (const auto& nbrs : adjacency) {
    arcs.insert(arcs.end(), nbrs.begin(), nbrs.end());
    off.push_back(arcs.size());
  }
  std::vector<std::uint8_t> payload;
  bg::encode_block(first_vertex, off, arcs, payload);
  std::vector<dg::Neighbor> decoded;
  bg::decode_block(first_vertex, off, payload, decoded);
  return decoded;
}

void expect_arcs_bit_equal(const std::vector<dg::Neighbor>& a,
                           const std::vector<dg::Neighbor>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].target, b[i].target) << "arc " << i;
    // Bit-level weight comparison: the codec stores raw IEEE-754 images.
    std::uint64_t wa = 0, wb = 0;
    std::memcpy(&wa, &a[i].weight, 8);
    std::memcpy(&wb, &b[i].weight, 8);
    EXPECT_EQ(wa, wb) << "arc " << i;
  }
}

std::vector<dg::Neighbor> flatten(
    const std::vector<std::vector<dg::Neighbor>>& adjacency) {
  std::vector<dg::Neighbor> arcs;
  for (const auto& nbrs : adjacency)
    arcs.insert(arcs.end(), nbrs.begin(), nbrs.end());
  return arcs;
}

}  // namespace

// ---------------------------------------------------------------- codec ----

TEST(BlockCodec, VarintRoundTripAndTruncation) {
  std::vector<std::uint8_t> buf;
  const std::uint64_t values[] = {0,       1,          127,  128,
                                  16383,   16384,      1u << 31,
                                  ~0ull >> 1, ~0ull};
  for (const std::uint64_t v : values) bg::put_varint(buf, v);
  const std::uint8_t* p = buf.data();
  const std::uint8_t* end = buf.data() + buf.size();
  for (const std::uint64_t v : values) {
    std::uint64_t got = 0;
    p = bg::get_varint(p, end, got);
    EXPECT_EQ(got, v);
  }
  EXPECT_EQ(p, end);
  // A varint cut mid-continuation must throw, not read past the buffer.
  std::vector<std::uint8_t> big;
  bg::put_varint(big, ~0ull);
  std::uint64_t scratch = 0;
  EXPECT_THROW(bg::get_varint(big.data(), big.data() + big.size() - 1, scratch),
               bg::BlockFormatError);
}

TEST(BlockCodec, ZigZagIsInvolutionAtExtremes) {
  for (const std::int64_t v :
       {std::int64_t{0}, std::int64_t{-1}, std::int64_t{1},
        std::numeric_limits<std::int64_t>::min(),
        std::numeric_limits<std::int64_t>::max()})
    EXPECT_EQ(bg::zigzag_decode(bg::zigzag_encode(v)), v);
}

TEST(BlockCodec, RoundTripAdversarialShapes) {
  // Empty adjacency runs interleaved with populated ones.
  {
    const std::vector<std::vector<dg::Neighbor>> adj = {
        {}, {{5, 1.0}}, {}, {}, {{0, 2.5}, {7, 2.5}}, {}};
    expect_arcs_bit_equal(codec_round_trip(0, adj), flatten(adj));
  }
  // Hub vertex: one huge run dominating the block.
  {
    std::vector<std::vector<dg::Neighbor>> adj(3);
    for (dg::VertexId t = 0; t < 5000; ++t)
      adj[1].push_back({t * 3 + 1, 1.0 + (t % 4) * 0.25});
    expect_arcs_bit_equal(codec_round_trip(100, adj), flatten(adj));
  }
  // Unsorted adjacency with back-references: negative deltas must survive
  // (the codec preserves stored order, never assumes sortedness).
  {
    const std::vector<std::vector<dg::Neighbor>> adj = {
        {{900, 1.0}, {2, 1.0}, {901, 1.0}, {0, 1.0}, {450, 1.0}}};
    expect_arcs_bit_equal(codec_round_trip(450, adj), flatten(adj));
  }
  // Extreme id span: first vertex near the top of VertexId, targets at 0.
  {
    const dg::VertexId big = std::numeric_limits<dg::VertexId>::max() - 2;
    const std::vector<std::vector<dg::Neighbor>> adj = {
        {{0, 1.0}, {big, 1.0}, {1, 1.0}}};
    expect_arcs_bit_equal(codec_round_trip(big - 10, adj), flatten(adj));
  }
  // Weight runs: long duplicate runs, run breaks on bitwise inequality
  // (including -0.0 vs +0.0 and subnormals).
  {
    std::vector<std::vector<dg::Neighbor>> adj(1);
    for (int i = 0; i < 300; ++i) adj[0].push_back({static_cast<dg::VertexId>(i), 1.0});
    adj[0].push_back({300, -0.0});
    adj[0].push_back({301, +0.0});
    adj[0].push_back({302, 5e-324});  // smallest subnormal
    adj[0].push_back({303, 0.1 + 0.2});
    expect_arcs_bit_equal(codec_round_trip(7, adj), flatten(adj));
  }
}

TEST(BlockCodec, RejectsTruncatedAndOversizedPayload) {
  const std::vector<std::vector<dg::Neighbor>> adj = {
      {{1, 1.0}, {2, 2.0}}, {{0, 3.0}}};
  std::vector<dg::EdgeIndex> off = {0, 2, 3};
  std::vector<std::uint8_t> payload;
  bg::encode_block(0, off, flatten(adj), payload);
  std::vector<dg::Neighbor> out;
  // Every truncation point must be detected, not decoded as garbage.
  for (std::size_t cut = 0; cut < payload.size(); ++cut)
    EXPECT_THROW(
        bg::decode_block(0, off, {payload.data(), cut}, out),
        bg::BlockFormatError)
        << "cut at " << cut;
  // Trailing bytes beyond the encoded streams are a structural violation.
  std::vector<std::uint8_t> padded = payload;
  padded.push_back(0);
  EXPECT_THROW(bg::decode_block(0, off, padded, out), bg::BlockFormatError);
}

// ----------------------------------------------------------- block file ----

TEST_F(BlockFile, WriterReaderRoundTripIsBitExact) {
  const auto gg = gen::lfr_lite({}, 11);
  const auto csr = dg::build_csr(gg.edges, gg.num_vertices);
  bg::WriteOptions opts;
  opts.block_payload_bytes = 2048;  // force many blocks
  const auto s = bg::write_block_file(path("g.blockgraph"), csr, opts);
  EXPECT_EQ(s.num_vertices, csr.num_vertices());
  EXPECT_EQ(s.num_arcs, csr.num_arcs());
  EXPECT_GT(s.num_blocks, 4u);

  const auto graph = bg::BlockGraph::open(path("g.blockgraph"));
  ASSERT_EQ(graph.num_vertices(), csr.num_vertices());
  ASSERT_EQ(graph.num_arcs(), csr.num_arcs());
  // Totals and per-vertex caches carry the Csr's exact bits.
  EXPECT_EQ(graph.total_weight(), csr.total_weight());
  EXPECT_EQ(graph.total_link_weight(), csr.total_link_weight());
  auto cur = graph.cursor();
  for (dg::VertexId u = 0; u < csr.num_vertices(); ++u) {
    EXPECT_EQ(graph.degree(u), csr.degree(u));
    EXPECT_EQ(graph.weighted_degree(u), csr.weighted_degree(u));
    EXPECT_EQ(graph.self_weight(u), csr.self_weight(u));
    const auto got = graph.neighbors(u, cur);
    const auto want = csr.neighbors(u);
    ASSERT_EQ(got.size(), want.size()) << "vertex " << u;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].target, want[i].target);
      EXPECT_EQ(got[i].weight, want[i].weight);
    }
  }
}

TEST_F(BlockFile, OpenRejectsTruncationAndBadMagic) {
  const auto gg = gen::sbm(400, 8, 0.2, 0.01, 3);
  const auto csr = dg::build_csr(gg.edges, gg.num_vertices);
  bg::write_block_file(path("g.blockgraph"), csr, {});

  // Truncate at several depths: header, sections, payload.
  std::ifstream in(path("g.blockgraph"), std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();
  for (const std::size_t keep :
       {std::size_t{16}, std::size_t{200}, bytes.size() / 2,
        bytes.size() - 1}) {
    std::ofstream out(path("trunc.blockgraph"), std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(keep));
    out.close();
    EXPECT_ANY_THROW(bg::BlockGraph::open(path("trunc.blockgraph")))
        << "kept " << keep << " of " << bytes.size();
  }

  // Wrong magic is a format error, not a crash.
  std::vector<char> junk = bytes;
  junk[0] = 'X';
  std::ofstream out(path("junk.blockgraph"), std::ios::binary);
  out.write(junk.data(), static_cast<std::streamsize>(junk.size()));
  out.close();
  EXPECT_THROW(bg::BlockGraph::open(path("junk.blockgraph")),
               bg::BlockFormatError);
}

TEST_F(BlockFile, CorruptPayloadBlockIsCaughtOnDecode) {
  const auto gg = gen::ring_of_cliques(40, 6, 5);
  const auto csr = dg::build_csr(gg.edges, gg.num_vertices);
  bg::write_block_file(path("g.blockgraph"), csr, {});
  std::ifstream in(path("g.blockgraph"), std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();
  // Flip a byte near the end of the file — inside the last payload block,
  // outside the section CRC — so open() succeeds and the damage is only
  // discoverable by the per-block checksum.
  bytes[bytes.size() - 5] ^= 0x40;
  std::ofstream out(path("g.blockgraph"), std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();

  const auto graph = bg::BlockGraph::open(path("g.blockgraph"));
  auto cur = graph.cursor();
  bool threw = false;
  try {
    for (dg::VertexId u = 0; u < graph.num_vertices(); ++u)
      (void)graph.neighbors(u, cur);
  } catch (const bg::BlockFormatError&) {
    threw = true;
  }
  EXPECT_TRUE(threw) << "corrupt block decoded silently";
}

TEST_F(BlockFile, CacheStaysBoundedAndCountsEvictions) {
  const auto gg = gen::lfr_lite({}, 23);
  const auto csr = dg::build_csr(gg.edges, gg.num_vertices);
  bg::WriteOptions wopts;
  wopts.block_payload_bytes = 1024;  // many small blocks
  const auto s = bg::write_block_file(path("g.blockgraph"), csr, wopts);
  ASSERT_GT(s.num_blocks, 16u);

  bg::BlockGraph::Options opts;
  opts.cache_slots = 1;
  // Budget ≈ a handful of decoded blocks, far below the full graph.
  opts.cache_bytes = 8 * 1024;
  const auto graph = bg::BlockGraph::open(path("g.blockgraph"), opts);
  {
    auto cur = graph.cursor();
    for (int pass = 0; pass < 2; ++pass)
      for (dg::VertexId u = 0; u < graph.num_vertices(); ++u)
        (void)graph.neighbors(u, cur);
  }
  const auto st = graph.stats();
  EXPECT_GT(st.misses, 0u);
  EXPECT_GT(st.evictions, 0u) << "budget was never enforced";
  EXPECT_GT(st.decode_ns, 0u);
  EXPECT_EQ(st.bytes_mapped, graph.bytes_mapped());
  // The per-slot bound: resident decoded bytes never exceed the budget by
  // more than one block's decoded size (a slot always holds its current
  // block, however large).
  const std::uint64_t max_block_bytes =
      static_cast<std::uint64_t>(csr.num_arcs()) * sizeof(dg::Neighbor);
  EXPECT_LE(st.resident_bytes, opts.cache_bytes + max_block_bytes);
}

TEST_F(BlockFile, ConcurrentCursorsDecodeIndependently) {
  const auto gg = gen::sbm(2000, 20, 0.05, 0.002, 9);
  const auto csr = dg::build_csr(gg.edges, gg.num_vertices);
  bg::write_block_file(path("g.blockgraph"), csr, {});
  bg::BlockGraph::Options opts;
  opts.cache_bytes = 64 * 1024;  // small enough to churn
  const auto graph = bg::BlockGraph::open(path("g.blockgraph"), opts);

  // Each thread holds its own cursor and scans the whole graph; every scan
  // must see exactly the resident adjacency regardless of interleaving.
  constexpr int kThreads = 4;
  std::vector<std::uint64_t> arc_counts(kThreads, 0);
  std::vector<double> weight_sums(kThreads, 0);
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      auto cur = graph.cursor();
      for (dg::VertexId u = 0; u < graph.num_vertices(); ++u)
        for (const auto& nb : graph.neighbors(u, cur)) {
          ++arc_counts[t];
          weight_sums[t] += nb.weight;
        }
    });
  }
  for (auto& th : pool) th.join();

  double expected_sum = 0;
  for (dg::VertexId u = 0; u < csr.num_vertices(); ++u)
    for (const auto& nb : csr.neighbors(u)) expected_sum += nb.weight;
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(arc_counts[t], csr.num_arcs()) << "thread " << t;
    // Same scan order per thread → bit-identical accumulation.
    EXPECT_EQ(weight_sums[t], expected_sum) << "thread " << t;
  }
}

// ------------------------------------------------------- backend identity ----

TEST_F(BackendIdentity, DelegatePartitionsMatchResident) {
  const auto gg = gen::lfr_lite({}, 31);
  const auto csr = dg::build_csr(gg.edges, gg.num_vertices);
  bg::write_block_file(path("g.blockgraph"), csr, {});
  const auto blocks = bg::BlockGraph::open(path("g.blockgraph"));
  for (const int p : {2, 4, 7}) {
    const auto a = part::make_delegate(dg::GraphView(csr), p);
    const auto b = part::make_delegate(dg::GraphView(blocks), p);
    EXPECT_EQ(a.is_delegate, b.is_delegate) << "p=" << p;
    EXPECT_EQ(a.owners, b.owners) << "p=" << p;
    EXPECT_EQ(a.rank_arcs, b.rank_arcs) << "p=" << p;
  }
}

TEST_F(BackendIdentity, DistInfomapBitIdenticalAcrossEnginesAndThreads) {
  const auto gg = gen::lfr_lite({}, 17);
  const auto csr = dg::build_csr(gg.edges, gg.num_vertices);
  bg::write_block_file(path("g.blockgraph"), csr, {});
  bg::BlockGraph::Options bopts;
  bopts.cache_bytes = 256 * 1024;  // small: exercise eviction mid-run
  const auto blocks = bg::BlockGraph::open(path("g.blockgraph"), bopts);

  for (const bool use_async : {false, true}) {
    for (const int threads : {1, 2, 4}) {
      dc::DistInfomapConfig cfg;
      cfg.num_ranks = 4;
      cfg.threads_per_rank = threads;
      cfg.async = use_async;
      const auto res = dc::distributed_infomap(dg::GraphView(csr), cfg);
      const auto blk = dc::distributed_infomap(dg::GraphView(blocks), cfg);
      EXPECT_EQ(res.assignment, blk.assignment)
          << "async=" << use_async << " threads=" << threads;
      EXPECT_EQ(res.codelength, blk.codelength)  // bit-identical, not NEAR
          << "async=" << use_async << " threads=" << threads;
    }
  }
}

TEST_F(BackendIdentity, DistInfomapBitIdenticalUnderFaultPlan) {
  const auto gg = gen::sbm(600, 12, 0.15, 0.01, 13);
  const auto csr = dg::build_csr(gg.edges, gg.num_vertices);
  bg::write_block_file(path("g.blockgraph"), csr, {});
  const auto blocks = bg::BlockGraph::open(path("g.blockgraph"));

  dc::DistInfomapConfig cfg;
  cfg.num_ranks = 5;
  cfg.threads_per_rank = 2;
  cfg.faults.drop = 0.02;
  cfg.faults.duplicate = 0.02;
  cfg.faults.reorder = 0.01;
  cfg.faults.seed = 77;
  cfg.comm_watchdog_ms = 10'000;
  const auto res = dc::distributed_infomap(dg::GraphView(csr), cfg);
  const auto blk = dc::distributed_infomap(dg::GraphView(blocks), cfg);
  EXPECT_EQ(res.assignment, blk.assignment);
  EXPECT_EQ(res.codelength, blk.codelength);
}

TEST_F(BackendIdentity, DistLouvainBitIdenticalAcrossBackends) {
  const auto gg = gen::ring_of_cliques(30, 8, 21);
  const auto csr = dg::build_csr(gg.edges, gg.num_vertices);
  bg::write_block_file(path("g.blockgraph"), csr, {});
  bg::BlockGraph::Options bopts;
  bopts.cache_bytes = 64 * 1024;
  const auto blocks = bg::BlockGraph::open(path("g.blockgraph"), bopts);

  for (const int p : {2, 4}) {
    const auto res = dc::distributed_louvain(dg::GraphView(csr), p);
    const auto blk = dc::distributed_louvain(dg::GraphView(blocks), p);
    EXPECT_EQ(res.assignment, blk.assignment) << "p=" << p;
    EXPECT_EQ(res.modularity, blk.modularity) << "p=" << p;
  }
}

TEST_F(BackendIdentity, ModuleTableLoadFactorDoesNotChangeResults) {
  // module_table_max_load_pct is a pure perf knob: denser tables, same
  // partition and MDL bits.
  const auto gg = gen::lfr_lite({}, 29);
  const auto csr = dg::build_csr(gg.edges, gg.num_vertices);
  dc::DistInfomapConfig base;
  base.num_ranks = 4;
  const auto ref = dc::distributed_infomap(csr, base);
  for (const int pct : {50, 95}) {
    dc::DistInfomapConfig cfg = base;
    cfg.module_table_max_load_pct = pct;
    const auto got = dc::distributed_infomap(csr, cfg);
    EXPECT_EQ(got.assignment, ref.assignment) << "pct=" << pct;
    EXPECT_EQ(got.codelength, ref.codelength) << "pct=" << pct;
  }
}

// ------------------------------------------------------------ cost model ----

TEST_F(DecodeCost, MeasurementFeedsCostModel) {
  const auto gg = gen::lfr_lite({}, 37);
  const auto csr = dg::build_csr(gg.edges, gg.num_vertices);
  bg::WriteOptions wopts;
  wopts.block_payload_bytes = 4096;
  bg::write_block_file(path("g.blockgraph"), csr, wopts);
  const auto blocks = bg::BlockGraph::open(path("g.blockgraph"));

  const auto m = perf::measure_decode_cost(blocks, 16);
  ASSERT_TRUE(m.valid());
  EXPECT_GT(m.sec_per_arc_decode, 0.0);
  EXPECT_GT(m.arcs_per_block, 0.0);
  EXPECT_GT(m.blocks_timed, 0u);

  perf::CostModel model;
  model.sec_per_arc = 1e-8;
  // Defaults are inert: effective == base, the resident formula.
  EXPECT_EQ(model.effective_sec_per_arc(), model.sec_per_arc);
  perf::apply_decode_cost(model, m);
  // A cold cache (hit ratio 1 → still inert) vs a measured miss stream.
  model.decode_hit_ratio = 0.0;
  EXPECT_EQ(model.effective_sec_per_arc(),
            model.sec_per_arc + model.sec_per_arc_decode);

  bg::BlockGraphStats st;
  st.hits = 900;
  st.misses = 100;
  perf::apply_decode_feedback(model, st);
  EXPECT_DOUBLE_EQ(model.decode_hit_ratio, 0.9);
  EXPECT_DOUBLE_EQ(model.effective_sec_per_arc(),
                   model.sec_per_arc + 0.1 * model.sec_per_arc_decode);
}

TEST(CacheThrashRule, FiresOnlyOnSustainedMissStorm) {
  obs::WatchdogOptions opts;
  // Below the fault floor: stay quiet regardless of ratio.
  EXPECT_TRUE(obs::analyze_block_cache({10, 100, 50}, opts).empty());
  // Hot cache: many faults, low miss ratio.
  EXPECT_TRUE(obs::analyze_block_cache({10'000, 100, 5}, opts).empty());
  // Miss storm without evictions (cold start on a big cache): not thrash.
  EXPECT_TRUE(obs::analyze_block_cache({100, 5'000, 0}, opts).empty());
  // Sustained thrash: mostly misses and the clock hand is spinning.
  const auto anomalies = obs::analyze_block_cache({400, 5'000, 3'000}, opts);
  ASSERT_EQ(anomalies.size(), 1u);
  EXPECT_EQ(anomalies[0].kind, "cache_thrash");
  EXPECT_NE(anomalies[0].detail.find("--block-cache-mb"), std::string::npos);
}
