// Fault-injection + recovery tests for the comm substrate (comm/fault.hpp):
// seeded drop/duplicate/reorder/corrupt plans must be healed transparently —
// payload-level semantics and, end to end, the final partition and MDL stay
// bit-identical to the fault-free run — while unrecoverable schedules and
// stalled ranks surface as typed CommFault diagnoses instead of hangs.
#include <gtest/gtest.h>

#include <atomic>
#include <climits>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "comm/runtime.hpp"
#include "core/dist_infomap.hpp"
#include "graph/builder.hpp"
#include "graph/gen/generators.hpp"
#include "util/check.hpp"

namespace dc = dinfomap::comm;
namespace core = dinfomap::core;
namespace dg = dinfomap::graph;
namespace gen = dinfomap::graph::gen;

namespace {

dc::CommCounters sum_counters(const dc::Runtime::JobReport& report) {
  dc::CommCounters total;
  for (const auto& c : report.counters) total += c;
  return total;
}

dc::FaultCounters sum_faults(const std::vector<dc::FaultCounters>& faults) {
  dc::FaultCounters total;
  for (const auto& f : faults) total += f;
  return total;
}

/// Rank 0 streams `count` tagged ints to rank 1, which must observe them in
/// exact send order whatever the plan does to the wire.
void ordered_stream_roundtrip(const dc::Runtime::Options& options, int count) {
  auto report = dc::Runtime::run(
      2,
      [&](dc::Comm& comm) {
        constexpr int kTag = 3;
        if (comm.rank() == 0) {
          for (int i = 0; i < count; ++i) comm.send_value<int>(1, kTag, i);
        } else {
          for (int i = 0; i < count; ++i)
            ASSERT_EQ(comm.recv_value<int>(0, kTag), i) << "at message " << i;
        }
      },
      options);
  EXPECT_FALSE(report.aborted);
  EXPECT_GT(sum_faults(report.faults_injected).total(), 0u)
      << "plan never fired — the test exercised nothing";
}

}  // namespace

// ---- satellite: maybe_delay modulo-zero UB at UINT_MAX ---------------------

TEST(ChaosDelay, BoundaryNoWrapAtUintMax) {
  // chaos_max_delay_us + 1 used to be computed in `unsigned`, wrapping to 0
  // at UINT_MAX — a modulo-by-zero. The 64-bit helper must stay in range.
  const std::uint64_t mixed = ~std::uint64_t{0};
  const auto d = dc::Runtime::chaos_delay_us(mixed, UINT_MAX);
  EXPECT_LE(d, static_cast<std::uint64_t>(UINT_MAX));
  EXPECT_EQ(dc::Runtime::chaos_delay_us(mixed, 0), 0u);
  EXPECT_LE(dc::Runtime::chaos_delay_us(0x123456789abcdefULL, 1), 1u);
}

// ---- satellite: CommAborted-as-root-cause must not report success ----------

TEST(RuntimeAbort, RootCauseCommAbortedIsRethrown) {
  // A rank whose own failure *is* CommAborted used to be swallowed, turning
  // a dead job into silent success (and hanging its blocked peers).
  EXPECT_THROW(dc::Runtime::run(4,
                                [](dc::Comm& comm) {
                                  if (comm.rank() == 1)
                                    throw dc::CommAborted("root cause");
                                  (void)comm.recv_bytes(1, 7);
                                }),
               dc::CommAborted);
}

TEST(RuntimeAbort, PrimaryFailureOutranksSecondaryAborts) {
  // The opposite ordering: a real failure plus CommAborted casualties must
  // rethrow the primary error, not the abort.
  try {
    dc::Runtime::run(4, [](dc::Comm& comm) {
      if (comm.rank() == 2) throw std::runtime_error("rank 2 root cause");
      (void)comm.recv_bytes(2, 7);
    });
    FAIL() << "expected the primary failure to propagate";
  } catch (const dc::CommAborted&) {
    FAIL() << "secondary CommAborted outranked the primary failure";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "rank 2 root cause");
  }
}

TEST(RuntimeAbort, CleanJobReportsNotAborted) {
  const auto report = dc::Runtime::run(3, [](dc::Comm& comm) {
    (void)comm.allreduce(comm.rank(), dc::ReduceOp::kSum);
  });
  EXPECT_FALSE(report.aborted);
  EXPECT_EQ(report.stalled_rank, -1);
  EXPECT_EQ(sum_counters(report).recovery_events(), 0u);
}

// ---- fault plans healed transparently --------------------------------------

TEST(FaultRecovery, PlanProbabilitiesValidated) {
  dc::Runtime::Options opt;
  opt.faults.drop = 0.7;
  opt.faults.duplicate = 0.7;
  // Config-time validation throws the typed error (not a generic contract
  // violation) so the CLI can map it to a clean exit-2 diagnostic.
  EXPECT_THROW(dc::Runtime::run(2, [](dc::Comm&) {}, opt),
               dc::FaultPlanError);
}

TEST(FaultRecovery, DropsRecoveredTransparently) {
  dc::Runtime::Options opt;
  opt.faults.drop = 0.3;
  opt.faults.seed = 11;
  auto report = dc::Runtime::run(
      2,
      [&](dc::Comm& comm) {
        constexpr int kTag = 3;
        if (comm.rank() == 0) {
          for (int i = 0; i < 200; ++i) comm.send_value<int>(1, kTag, i);
        } else {
          for (int i = 0; i < 200; ++i)
            ASSERT_EQ(comm.recv_value<int>(0, kTag), i) << "at message " << i;
        }
      },
      opt);
  const auto total = sum_counters(report);
  const auto injected = sum_faults(report.faults_injected);
  EXPECT_GT(injected.drops, 0u);
  EXPECT_GT(total.retransmit_requests, 0u);
  EXPECT_GT(total.retransmits, 0u);
}

TEST(FaultRecovery, DuplicateFramesDropped) {
  dc::Runtime::Options opt;
  opt.faults.duplicate = 0.5;
  opt.faults.seed = 12;
  auto report = dc::Runtime::run(
      2,
      [&](dc::Comm& comm) {
        constexpr int kTag = 3;
        if (comm.rank() == 0) {
          for (int i = 0; i < 200; ++i) comm.send_value<int>(1, kTag, i);
        } else {
          for (int i = 0; i < 200; ++i)
            ASSERT_EQ(comm.recv_value<int>(0, kTag), i) << "at message " << i;
        }
      },
      opt);
  const auto total = sum_counters(report);
  EXPECT_GT(sum_faults(report.faults_injected).duplicates, 0u);
  EXPECT_GT(total.dup_frames_dropped, 0u);
}

TEST(FaultRecovery, CorruptionDetectedAndRepaired) {
  dc::Runtime::Options opt;
  opt.faults.corrupt = 0.5;
  opt.faults.seed = 13;
  auto report = dc::Runtime::run(
      2,
      [&](dc::Comm& comm) {
        constexpr int kTag = 3;
        if (comm.rank() == 0) {
          for (int i = 0; i < 200; ++i) comm.send_value<int>(1, kTag, i);
        } else {
          for (int i = 0; i < 200; ++i)
            ASSERT_EQ(comm.recv_value<int>(0, kTag), i) << "at message " << i;
        }
      },
      opt);
  const auto total = sum_counters(report);
  EXPECT_GT(sum_faults(report.faults_injected).corruptions, 0u);
  EXPECT_GT(total.checksum_failures, 0u);
  EXPECT_GT(total.retransmits, 0u);
}

TEST(FaultRecovery, ReorderTransparent) {
  dc::Runtime::Options opt;
  opt.faults.reorder = 0.5;
  opt.faults.seed = 14;
  ordered_stream_roundtrip(opt, 200);
}

TEST(FaultRecovery, EmptyPayloadCorruptionRecovered) {
  // Barrier frames carry no payload; corruption then damages the header
  // checksum instead and must still be detected and repaired.
  dc::Runtime::Options opt;
  opt.faults.corrupt = 0.5;
  opt.faults.seed = 15;
  auto report = dc::Runtime::run(
      4, [&](dc::Comm& comm) { for (int i = 0; i < 50; ++i) comm.barrier(); },
      opt);
  EXPECT_GT(sum_faults(report.faults_injected).corruptions, 0u);
  EXPECT_GT(sum_counters(report).checksum_failures, 0u);
}

TEST(FaultRecovery, MixedFaultStormCollectivesStayCorrect) {
  dc::Runtime::Options opt;
  opt.faults.drop = 0.05;
  opt.faults.duplicate = 0.05;
  opt.faults.reorder = 0.05;
  opt.faults.corrupt = 0.05;
  opt.faults.seed = 16;
  constexpr int kRanks = 5;
  auto report = dc::Runtime::run(
      kRanks,
      [&](dc::Comm& comm) {
        for (int round = 0; round < 20; ++round) {
          const int sum = comm.allreduce(comm.rank() + round, dc::ReduceOp::kSum);
          ASSERT_EQ(sum, kRanks * (kRanks - 1) / 2 + kRanks * round);
          const auto all = comm.allgather_value(comm.rank() * 3 + round);
          ASSERT_EQ(static_cast<int>(all.size()), kRanks);
          for (int r = 0; r < kRanks; ++r) ASSERT_EQ(all[r], r * 3 + round);
          std::vector<std::vector<int>> out(kRanks);
          for (int r = 0; r < kRanks; ++r)
            out[r] = {comm.rank() * 100 + r, round};
          const auto in = comm.alltoallv(out);
          for (int r = 0; r < kRanks; ++r) {
            ASSERT_EQ(in[r], (std::vector<int>{r * 100 + comm.rank(), round}));
          }
          comm.barrier();
        }
      },
      opt);
  const auto injected = sum_faults(report.faults_injected);
  EXPECT_GT(injected.drops, 0u);
  EXPECT_GT(injected.duplicates, 0u);
  EXPECT_GT(injected.reorders, 0u);
  EXPECT_GT(injected.corruptions, 0u);
  EXPECT_GT(sum_counters(report).recovery_events(), 0u);
}

// ---- unrecoverable faults surface as CommFault, not hangs ------------------

TEST(FaultRecovery, UnrecoverableCorruptionThrowsCommFault) {
  // With a zero-length send log the pristine copy of a corrupt frame is gone
  // by the time the receiver detects it — a typed failure, immediately,
  // with no reliance on timeouts.
  dc::Runtime::Options opt;
  opt.faults.corrupt = 1.0;
  opt.faults.seed = 17;
  opt.retransmit_window = 0;
  try {
    dc::Runtime::run(
        2,
        [](dc::Comm& comm) {
          if (comm.rank() == 0) comm.send_value<int>(1, 3, 42);
          else (void)comm.recv_value<int>(0, 3);
        },
        opt);
    FAIL() << "expected CommFault";
  } catch (const dc::CommFault& e) {
    EXPECT_EQ(e.rank(), 0);  // the corrupt frame came from rank 0
    EXPECT_NE(std::string(e.what()).find("unrecoverable"), std::string::npos)
        << e.what();
  }
}

TEST(FaultRecovery, RetryBudgetExhaustionNamesTheSilentPeer) {
  // Evicted history plus a frame that never arrives: the receiver must give
  // up after its bounded budget with a diagnosis, not spin forever.
  dc::Runtime::Options opt;
  opt.faults.drop = 1.0;
  opt.faults.seed = 18;
  opt.retransmit_window = 0;  // every loss is immediately unprovable
  opt.max_recv_retries = 3;
  opt.retry_backoff_us = 100;
  try {
    dc::Runtime::run(
        2,
        [](dc::Comm& comm) {
          if (comm.rank() == 0) comm.send_value<int>(1, 3, 42);
          else (void)comm.recv_value<int>(0, 3);
        },
        opt);
    FAIL() << "expected CommFault";
  } catch (const dc::CommFault& e) {
    EXPECT_EQ(e.rank(), 0);
    EXPECT_NE(std::string(e.what()).find("retry budget"), std::string::npos)
        << e.what();
  }
}

TEST(Watchdog, StalledRankFailsWithDiagnosisInsteadOfHanging) {
  dc::Runtime::Options opt;
  opt.faults.stall_rank = 2;
  opt.faults.seed = 19;
  opt.watchdog_timeout_ms = 300;
  try {
    dc::Runtime::run(
        4,
        [](dc::Comm& comm) {
          for (int i = 0; i < 1000; ++i) comm.barrier();
        },
        opt);
    FAIL() << "expected the watchdog to abort the stalled job";
  } catch (const dc::CommFault& e) {
    EXPECT_EQ(e.rank(), 2);
    EXPECT_NE(std::string(e.what()).find("rank 2"), std::string::npos)
        << e.what();
  }
}

TEST(Watchdog, QuietOnHealthyJob) {
  dc::Runtime::Options opt;
  opt.watchdog_timeout_ms = 2000;
  const auto report = dc::Runtime::run(3, [](dc::Comm& comm) {
    for (int i = 0; i < 10; ++i) comm.barrier();
  }, opt);
  EXPECT_FALSE(report.aborted);
  EXPECT_EQ(report.stalled_rank, -1);
}

// ---- end to end: results bit-identical under any seeded plan ---------------

TEST(FaultDeterminism, PartitionAndMdlBitIdenticalUnderFaultPlans) {
  const auto gg = gen::sbm(400, 8, 0.08, 0.004, 5);
  const auto g = dg::build_csr(gg.edges, gg.num_vertices);

  core::DistInfomapConfig base;
  base.num_ranks = 4;
  const auto clean = core::distributed_infomap(g, base);

  std::vector<dc::FaultPlan> plans(4);
  plans[0].drop = 0.02;
  plans[1].duplicate = 0.02;
  plans[2].corrupt = 0.02;
  plans[3].drop = 0.01;
  plans[3].duplicate = 0.01;
  plans[3].reorder = 0.01;
  plans[3].corrupt = 0.01;
  for (std::size_t i = 0; i < plans.size(); ++i) {
    plans[i].seed = 100 + i;
    auto cfg = base;
    cfg.faults = plans[i];
    const auto faulted = core::distributed_infomap(g, cfg);
    // Recovery must be invisible: not "close", *identical*.
    EXPECT_EQ(faulted.assignment, clean.assignment) << "plan " << i;
    EXPECT_EQ(faulted.codelength, clean.codelength) << "plan " << i;
    // ...and the plan must demonstrably have fired and been healed.
    dc::FaultCounters injected;
    for (const auto& f : faulted.report.faults_injected) injected += f;
    EXPECT_GT(injected.total(), 0u) << "plan " << i;
    dc::CommCounters comm_total;
    for (const auto& c : faulted.comm_counters) comm_total += c;
    EXPECT_GT(comm_total.recovery_events(), 0u) << "plan " << i;
  }
}

TEST(FaultDeterminism, FaultPlanEchoedInRunReport) {
  const auto gg = gen::ring_of_cliques(8, 5, 2);
  const auto g = dg::build_csr(gg.edges, gg.num_vertices);
  core::DistInfomapConfig cfg;
  cfg.num_ranks = 4;
  cfg.faults.drop = 0.02;
  cfg.faults.seed = 7;
  const auto result = core::distributed_infomap(g, cfg);
  const auto json = result.report.to_json();
  EXPECT_NE(json.find("\"fault_drop\""), std::string::npos);
  EXPECT_NE(json.find("\"faults_injected\""), std::string::npos);
  EXPECT_NE(json.find("\"retransmit_requests\""), std::string::npos);
}
