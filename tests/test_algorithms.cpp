#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/builder.hpp"
#include "graph/gen/generators.hpp"
#include "quality/community_stats.hpp"
#include "util/check.hpp"

namespace dg = dinfomap::graph;
namespace dq = dinfomap::quality;

namespace {
/// Triangle 0-1-2 with a pendant path 2-3-4.
dg::Csr triangle_with_tail() {
  return dg::build_csr({{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}});
}
}  // namespace

TEST(CoreNumbers, TriangleWithTail) {
  const auto core = dg::core_numbers(triangle_with_tail());
  EXPECT_EQ(core[0], 2u);
  EXPECT_EQ(core[1], 2u);
  EXPECT_EQ(core[2], 2u);
  EXPECT_EQ(core[3], 1u);
  EXPECT_EQ(core[4], 1u);
}

TEST(CoreNumbers, CliqueIsKMinusOneCore) {
  const auto gg = dg::gen::ring_of_cliques(4, 6, 0);
  const auto g = dg::build_csr(gg.edges, gg.num_vertices);
  const auto core = dg::core_numbers(g);
  for (auto c : core) EXPECT_EQ(c, 5u);  // every vertex sits in a 5-core
}

TEST(CoreNumbers, StarIsOneCore) {
  dg::EdgeList edges;
  for (dg::VertexId v = 1; v <= 6; ++v) edges.push_back({0, v});
  const auto core = dg::core_numbers(dg::build_csr(edges));
  for (auto c : core) EXPECT_EQ(c, 1u);
}

TEST(CoreNumbers, IsolatedVertexIsZeroCore) {
  const auto core = dg::core_numbers(dg::build_csr({{0, 1}}, 3));
  EXPECT_EQ(core[2], 0u);
}

TEST(Clustering, TriangleIsFullyClustered) {
  const auto g = dg::build_csr({{0, 1}, {1, 2}, {0, 2}});
  const auto cc = dg::local_clustering(g);
  for (auto c : cc) EXPECT_DOUBLE_EQ(c, 1.0);
  EXPECT_DOUBLE_EQ(dg::global_clustering(g), 1.0);
}

TEST(Clustering, PathHasNoTriangles) {
  const auto g = dg::build_csr({{0, 1}, {1, 2}, {2, 3}});
  EXPECT_DOUBLE_EQ(dg::global_clustering(g), 0.0);
  for (auto c : dg::local_clustering(g)) EXPECT_DOUBLE_EQ(c, 0.0);
}

TEST(Clustering, TriangleWithTailMixed) {
  const auto cc = dg::local_clustering(triangle_with_tail());
  EXPECT_DOUBLE_EQ(cc[0], 1.0);
  EXPECT_DOUBLE_EQ(cc[2], 1.0 / 3.0);  // one closed of three pairs at vertex 2
  EXPECT_DOUBLE_EQ(cc[3], 0.0);
}

TEST(Clustering, WattsStrogatzLatticeIsClustered) {
  const auto lattice = dg::gen::watts_strogatz(300, 6, 0.0, 1);
  const auto g = dg::build_csr(lattice.edges, lattice.num_vertices);
  // Ring lattice with k=6: C = 0.6 exactly.
  EXPECT_NEAR(dg::global_clustering(g), 0.6, 1e-9);
}

TEST(Bfs, DistancesOnPath) {
  const auto g = dg::build_csr({{0, 1}, {1, 2}, {2, 3}}, 5);  // 4 isolated
  const auto dist = dg::bfs_distances(g, 0);
  EXPECT_EQ(dist[0], 0u);
  EXPECT_EQ(dist[3], 3u);
  EXPECT_EQ(dist[4], dg::kInvalidVertex);
}

TEST(Bfs, PseudoDiameterOfPathIsExact) {
  const auto g = dg::build_csr({{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  EXPECT_EQ(dg::pseudo_diameter(g, 2), 4u);
}

TEST(Bfs, SmallWorldShrinksDiameter) {
  const auto lattice = dg::gen::watts_strogatz(400, 4, 0.0, 3);
  const auto rewired = dg::gen::watts_strogatz(400, 4, 0.3, 3);
  const auto d_lat = dg::pseudo_diameter(
      dg::build_csr(lattice.edges, lattice.num_vertices));
  const auto d_sw = dg::pseudo_diameter(
      dg::build_csr(rewired.edges, rewired.num_vertices));
  EXPECT_LT(d_sw, d_lat / 2);  // the Watts–Strogatz effect
}

TEST(CommunityStats, TwoTriangles) {
  const auto g = dg::build_csr(
      {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {2, 3}});
  const auto s = dq::summarize_partition(g, {0, 0, 0, 1, 1, 1});
  EXPECT_EQ(s.num_communities, 2u);
  EXPECT_EQ(s.largest, 3u);
  EXPECT_EQ(s.smallest, 3u);
  EXPECT_DOUBLE_EQ(s.communities[0].internal_weight, 3.0);
  EXPECT_DOUBLE_EQ(s.communities[0].cut_weight, 1.0);
  EXPECT_NEAR(s.coverage, 6.0 / 7.0, 1e-12);
  // Conductance: cut 1 over min(vol 7, 2W−vol 7) = 1/7.
  EXPECT_NEAR(s.communities[0].conductance, 1.0 / 7.0, 1e-12);
}

TEST(CommunityStats, SingleCommunityFullCoverage) {
  const auto g = dg::build_csr({{0, 1}, {1, 2}, {0, 2}});
  const auto s = dq::summarize_partition(g, {0, 0, 0});
  EXPECT_DOUBLE_EQ(s.coverage, 1.0);
  EXPECT_DOUBLE_EQ(s.max_conductance, 0.0);
}

TEST(CommunityStats, SelfLoopsCountInternal) {
  const auto g = dg::build_csr({{0, 0, 2.0}, {0, 1, 1.0}});
  const auto s = dq::summarize_partition(g, {0, 1});
  EXPECT_DOUBLE_EQ(s.communities[0].internal_weight, 2.0);
  EXPECT_DOUBLE_EQ(s.communities[0].cut_weight, 1.0);
}
