// Cross-backend transport suite (ISSUE 8): the socket backend must be
// semantically indistinguishable from the in-process backend — same
// collective results bit-for-bit, same transparent fault recovery, plus the
// failure kinds only a real process mesh can produce (peer_exited vs
// stalled). The unit tests here drive SocketTransport endpoints from threads
// of one process (each endpoint is its own "rank" over real Unix-domain
// sockets); the launcher/CLI tests fork genuine worker processes.
#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>

#include <array>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "comm/process_group.hpp"
#include "comm/runtime.hpp"
#include "comm/socket_transport.hpp"

namespace dc = dinfomap::comm;

namespace {

/// Fresh private directory for one mesh rendezvous (UDS paths must be short,
/// so stay under /tmp rather than the build tree).
std::string make_mesh_dir() {
  std::string tmpl = "/tmp/dinfomap_transport_XXXXXX";
  const char* dir = mkdtemp(tmpl.data());
  EXPECT_NE(dir, nullptr);
  return tmpl;
}

void remove_mesh_dir(const std::string& dir) {
  // Sockets are unlinked by the endpoints; the directory itself remains.
  ::rmdir(dir.c_str());
}

/// Run `fn` once per rank, each rank on its own thread owning its own
/// SocketTransport endpoint — the threaded stand-in for worker processes
/// (identical wire protocol; ASan/TSan can see the whole mesh). Rethrows the
/// lowest-rank failure after all ranks join.
void run_socket_ranks(int nranks, const dc::TransportTuning& tuning,
                      const std::function<void(dc::Comm&)>& fn,
                      unsigned linger_ms = 2'000) {
  const std::string dir = make_mesh_dir();
  std::vector<std::exception_ptr> failures(static_cast<std::size_t>(nranks));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      try {
        dc::SocketTransportOptions opts;
        opts.dir = dir;
        opts.linger_timeout_ms = linger_ms;
        dc::SocketTransport transport(r, nranks, opts, tuning);
        dc::Comm comm(transport);
        fn(comm);
      } catch (...) {
        failures[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  remove_mesh_dir(dir);
  for (auto& f : failures)
    if (f) std::rethrow_exception(f);
}

/// A deterministic mini-workload exercising every collective; returns a
/// per-rank result whose bits depend on all of them. Used to compare
/// backends and fault/fault-free runs bit-for-bit.
std::vector<double> collective_workload(dc::Comm& comm) {
  const int p = comm.size();
  const int r = comm.rank();
  std::vector<double> out;

  comm.barrier();
  // Rank-dependent payloads through alltoallv.
  std::vector<std::vector<double>> boxes(static_cast<std::size_t>(p));
  for (int d = 0; d < p; ++d)
    for (int k = 0; k < 3 + d; ++k)
      boxes[static_cast<std::size_t>(d)].push_back(0.25 * r + 1.0 / (k + 1) +
                                                   d);
  const auto inboxes = comm.alltoallv(boxes);
  double acc = 0.0;
  for (const auto& in : inboxes)
    for (double v : in) acc += v;
  out.push_back(acc);

  // Floating-point allreduce must be rank-ordered everywhere.
  out.push_back(comm.allreduce(acc * (r + 1), dc::ReduceOp::kSum));
  out.push_back(comm.allreduce(1.0 / (r + 1), dc::ReduceOp::kMax));

  // Broadcast + gather round trip.
  std::vector<double> blob;
  if (r == 0)
    for (int k = 0; k < 17; ++k) blob.push_back(1.0 / (k + 1));
  comm.bcast(0, blob);
  out.push_back(blob.at(7));
  const auto gathered = comm.gatherv(0, std::vector<double>{acc, double(r)});
  if (r == 0)
    for (const auto& g : gathered) out.insert(out.end(), g.begin(), g.end());
  comm.barrier();
  return out;
}

dc::FaultPlan chaos_plan(std::uint64_t seed) {
  dc::FaultPlan plan;
  plan.drop = 0.05;
  plan.duplicate = 0.05;
  plan.reorder = 0.05;
  plan.corrupt = 0.05;
  plan.seed = seed;
  return plan;
}

}  // namespace

// ---- fault-plan validation (satellite bugfix) ------------------------------

TEST(FaultPlanValidation, RejectsOutOfRangeRates) {
  dc::FaultPlan plan;
  plan.drop = 1.5;
  EXPECT_THROW(dc::validate_fault_plan(plan, 4), dc::FaultPlanError);
  plan.drop = -0.1;
  EXPECT_THROW(dc::validate_fault_plan(plan, 4), dc::FaultPlanError);
}

TEST(FaultPlanValidation, RejectsCascadeSumAboveOne) {
  dc::FaultPlan plan;
  plan.drop = 0.5;
  plan.duplicate = 0.4;
  plan.reorder = 0.2;
  EXPECT_THROW(dc::validate_fault_plan(plan, 4), dc::FaultPlanError);
}

TEST(FaultPlanValidation, RejectsStallRankOutsideJob) {
  dc::FaultPlan plan;
  plan.stall_rank = 99;
  EXPECT_THROW(dc::validate_fault_plan(plan, 4), dc::FaultPlanError);
  plan.stall_rank = 4;
  EXPECT_THROW(dc::validate_fault_plan(plan, 4), dc::FaultPlanError);
  plan.stall_rank = 3;
  EXPECT_NO_THROW(dc::validate_fault_plan(plan, 4));
  // Rank count unknown yet: rank bound deferred, negatives still rejected.
  plan.stall_rank = 99;
  EXPECT_NO_THROW(dc::validate_fault_plan(plan, 0));
}

TEST(FaultPlanValidation, StallExitNeedsAStallRankAndRealProcesses) {
  dc::FaultPlan plan;
  plan.stall_exits = true;
  EXPECT_THROW(dc::validate_fault_plan(plan, 4), dc::FaultPlanError);
  plan.stall_rank = 1;
  EXPECT_NO_THROW(dc::validate_fault_plan(plan, 4));
  // The in-process runtime has no process to kill.
  dc::Runtime::Options opt;
  opt.faults = plan;
  EXPECT_THROW(dc::Runtime::run(4, [](dc::Comm&) {}, opt),
               dc::FaultPlanError);
}

TEST(FaultPlanValidation, RuntimeRejectsBadPlansAtConfigTime) {
  dc::Runtime::Options opt;
  opt.faults.stall_rank = 99;  // typo'd rank would silently never fire
  EXPECT_THROW(dc::Runtime::run(4, [](dc::Comm&) {}, opt),
               dc::FaultPlanError);
}

// ---- socket mesh: basic semantics ------------------------------------------

TEST(SocketTransport, PointToPointRoundTrip) {
  dc::TransportTuning tuning;
  run_socket_ranks(2, tuning, [](dc::Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 5, std::vector<int>{1, 2, 3, 4});
      const auto back = comm.recv<int>(1, 6);
      EXPECT_EQ(back, (std::vector<int>{8, 9}));
    } else {
      const auto got = comm.recv<int>(0, 5);
      EXPECT_EQ(got, (std::vector<int>{1, 2, 3, 4}));
      comm.send(0, 6, std::vector<int>{8, 9});
    }
  });
}

TEST(SocketTransport, CollectivesMatchInprocBitwise) {
  for (const int p : {2, 4}) {
    std::vector<std::vector<double>> inproc(static_cast<std::size_t>(p));
    dc::Runtime::run(p, [&](dc::Comm& comm) {
      inproc[static_cast<std::size_t>(comm.rank())] =
          collective_workload(comm);
    });
    std::vector<std::vector<double>> socket(static_cast<std::size_t>(p));
    dc::TransportTuning tuning;
    run_socket_ranks(p, tuning, [&](dc::Comm& comm) {
      socket[static_cast<std::size_t>(comm.rank())] =
          collective_workload(comm);
    });
    for (int r = 0; r < p; ++r) {
      ASSERT_EQ(inproc[static_cast<std::size_t>(r)].size(),
                socket[static_cast<std::size_t>(r)].size())
          << "rank " << r;
      for (std::size_t i = 0; i < inproc[static_cast<std::size_t>(r)].size();
           ++i) {
        EXPECT_EQ(inproc[static_cast<std::size_t>(r)][i],
                  socket[static_cast<std::size_t>(r)][i])
            << "rank " << r << " slot " << i;
      }
    }
  }
}

// ---- socket mesh: recovery over the real wire ------------------------------

TEST(SocketTransport, FaultPlanRecoveryIsTransparentAtFourRanks) {
  constexpr int p = 4;
  std::vector<std::vector<double>> clean(static_cast<std::size_t>(p));
  dc::TransportTuning tuning;
  run_socket_ranks(p, tuning, [&](dc::Comm& comm) {
    clean[static_cast<std::size_t>(comm.rank())] = collective_workload(comm);
  });

  dc::TransportTuning faulty;
  faulty.faults = chaos_plan(/*seed=*/0xfeedULL);
  faulty.watchdog_timeout_ms = 20'000;
  std::vector<std::vector<double>> recovered(static_cast<std::size_t>(p));
  run_socket_ranks(p, faulty, [&](dc::Comm& comm) {
    recovered[static_cast<std::size_t>(comm.rank())] =
        collective_workload(comm);
  });

  for (int r = 0; r < p; ++r)
    EXPECT_EQ(clean[static_cast<std::size_t>(r)],
              recovered[static_cast<std::size_t>(r)])
        << "rank " << r;
}

TEST(SocketTransport, InjectedFaultCountsMatchInproc) {
  // Same plan, same traffic → the shared dice must fire identically on both
  // backends (the cross-backend determinism contract at the fault layer).
  constexpr int p = 3;
  dc::Runtime::Options opt;
  opt.faults = chaos_plan(/*seed=*/7);
  const auto workload = [](dc::Comm& comm) { (void)collective_workload(comm); };
  const auto report = dc::Runtime::run(p, workload, opt);
  std::uint64_t inproc_total = 0;
  for (const auto& f : report.faults_injected) inproc_total += f.total();

  dc::TransportTuning tuning;
  tuning.faults = chaos_plan(/*seed=*/7);
  std::atomic<std::uint64_t> socket_total{0};
  const std::string dir = make_mesh_dir();
  std::vector<std::thread> threads;
  for (int r = 0; r < p; ++r) {
    threads.emplace_back([&, r] {
      dc::SocketTransportOptions opts;
      opts.dir = dir;
      opts.linger_timeout_ms = 2'000;
      dc::SocketTransport transport(r, p, opts, tuning);
      dc::Comm comm(transport);
      workload(comm);
      socket_total.fetch_add(transport.injected().total());
    });
  }
  for (auto& t : threads) t.join();
  remove_mesh_dir(dir);
  EXPECT_EQ(socket_total.load(), inproc_total);
  EXPECT_GT(inproc_total, 0u);
}

// ---- socket mesh: typed failure kinds (satellite bugfix) -------------------

TEST(SocketTransport, PeerExitRaisesPeerExitedNotStalled) {
  // Rank 1 leaves immediately; rank 0 blocks on a frame that will never
  // come. Once rank 1's endpoint closes, rank 0 must get the *crash*
  // diagnosis (peer_exited), not a watchdog stall verdict.
  dc::TransportTuning tuning;
  tuning.watchdog_timeout_ms = 30'000;  // watchdog armed but must not fire
  std::atomic<int> kind{-1};
  std::atomic<int> accused{-1};
  run_socket_ranks(
      2, tuning,
      [&](dc::Comm& comm) {
        if (comm.rank() == 1) return;  // exits; destructor says bye and closes
        try {
          (void)comm.recv<int>(1, 3);
          ADD_FAILURE() << "recv from an exited peer returned data";
        } catch (const dc::CommFault& f) {
          kind.store(static_cast<int>(f.kind()));
          accused.store(f.rank());
        }
      },
      /*linger_ms=*/200);
  EXPECT_EQ(kind.load(), static_cast<int>(dc::CommFault::Kind::kPeerExited));
  EXPECT_EQ(accused.load(), 1);
}

// ---- CLI / launcher round trips through real forked workers ----------------

struct CliResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr interleaved
};

CliResult run_cli(const std::string& args) {
  const std::string cmd = std::string(DINFOMAP_CLI_BIN) + " " + args + " 2>&1";
  CliResult res;
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << cmd;
  if (pipe == nullptr) return res;
  char buf[512];
  while (fgets(buf, sizeof(buf), pipe) != nullptr) res.output += buf;
  const int status = pclose(pipe);
  res.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return res;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Shared fixture graph + per-test scratch names under one temp dir.
class TransportCli : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dir_ = new std::string(make_mesh_dir());
    edges_ = new std::string(*dir_ + "/ring.txt");
    const auto gen = run_cli("generate ring " + *edges_ + " 7");
    ASSERT_EQ(gen.exit_code, 0) << gen.output;
  }
  static void TearDownTestSuite() {
    // The suite scatters .clu / graph files through the scratch dir; sweep
    // them all before removing it.
    if (DIR* d = ::opendir(dir_->c_str())) {
      while (dirent* e = ::readdir(d)) {
        const std::string name = e->d_name;
        if (name != "." && name != "..") ::unlink((*dir_ + "/" + name).c_str());
      }
      ::closedir(d);
    }
    remove_mesh_dir(*dir_);
    delete dir_;
    delete edges_;
  }
  static std::string* dir_;
  static std::string* edges_;
};
std::string* TransportCli::dir_ = nullptr;
std::string* TransportCli::edges_ = nullptr;

/// Pull the one-line run summary ("distributed Infomap (p=...): L = ...")
/// out of CLI output — the cross-backend contract line.
std::string summary_line(const std::string& output) {
  std::istringstream in(output);
  std::string line;
  while (std::getline(in, line))
    if (line.find("distributed Infomap") != std::string::npos) return line;
  return {};
}

TEST_F(TransportCli, SocketBackendIsBitIdenticalToInproc) {
  const std::string a = *dir_ + "/inproc.clu";
  const std::string b = *dir_ + "/socket.clu";
  const std::string flags = " --algo dist --ranks 4 --seed 9";
  const auto inproc = run_cli("cluster " + *edges_ + " " + a + flags);
  ASSERT_EQ(inproc.exit_code, 0) << inproc.output;
  const auto socket =
      run_cli("cluster " + *edges_ + " " + b + flags + " --transport socket");
  ASSERT_EQ(socket.exit_code, 0) << socket.output;

  // Same partition, bit for bit, and the same printed MDL summary.
  const std::string clu_a = read_file(a);
  ASSERT_FALSE(clu_a.empty());
  EXPECT_EQ(clu_a, read_file(b));
  EXPECT_FALSE(summary_line(inproc.output).empty());
  EXPECT_EQ(summary_line(inproc.output), summary_line(socket.output));
}

TEST_F(TransportCli, SocketFaultPlanRecoversToIdenticalBitsAtFourRanks) {
  const std::string clean = *dir_ + "/clean.clu";
  const std::string faulty = *dir_ + "/faulty.clu";
  const std::string flags =
      " --algo dist --ranks 4 --seed 9 --transport socket";
  const auto base = run_cli("cluster " + *edges_ + " " + clean + flags);
  ASSERT_EQ(base.exit_code, 0) << base.output;
  const auto chaos = run_cli(
      "cluster " + *edges_ + " " + faulty + flags +
      " --faults drop=0.02,dup=0.02,reorder=0.02,corrupt=0.02");
  ASSERT_EQ(chaos.exit_code, 0) << chaos.output;

  EXPECT_EQ(read_file(clean), read_file(faulty));
  EXPECT_EQ(summary_line(base.output), summary_line(chaos.output));
  // The plan must actually have fired (recovery is doing real work here).
  EXPECT_NE(chaos.output.find("faults injected"), std::string::npos)
      << chaos.output;
}

TEST_F(TransportCli, KilledWorkerIsDiagnosedAsCrashNotHang) {
  const auto res = run_cli("cluster " + *edges_ + " " + *dir_ +
                           "/x.clu --algo dist --ranks 4 --seed 9 "
                           "--transport socket --faults exit=2 "
                           "--watchdog-ms 1500 --hang-grace-ms 4000");
  EXPECT_EQ(res.exit_code, 1) << res.output;
  EXPECT_NE(res.output.find("rank 2 crashed"), std::string::npos)
      << res.output;
  // Peers must report the typed peer_exited fault, not a watchdog stall.
  EXPECT_NE(res.output.find("exited with no matching frame"),
            std::string::npos)
      << res.output;
}

TEST_F(TransportCli, StalledWorkerIsDiagnosedAsHang) {
  const auto res = run_cli("cluster " + *edges_ + " " + *dir_ +
                           "/y.clu --algo dist --ranks 4 --seed 9 "
                           "--transport socket --faults stall=1 "
                           "--watchdog-ms 1000 --hang-grace-ms 1500");
  EXPECT_EQ(res.exit_code, 1) << res.output;
  EXPECT_NE(res.output.find("rank 1 stalled"), std::string::npos)
      << res.output;
}

TEST_F(TransportCli, RejectsMalformedNumericArguments) {
  const std::string base = "cluster " + *edges_ + " " + *dir_ + "/z.clu ";
  const struct {
    const char* args;
    const char* expect;  // substring the error must name
  } cases[] = {
      {"--ranks abc", "--ranks"},
      {"--ranks 0", "--ranks"},
      {"--ranks -3", "--ranks"},
      {"--ranks 99999999999999999999", "--ranks"},
      {"--seed -3", "--seed"},
      {"--seed 1x", "--seed"},
      {"--threads 1.5", "--threads"},
      {"--watchdog-ms nope", "--watchdog-ms"},
      {"--transport pigeon", "--transport"},
  };
  for (const auto& c : cases) {
    const auto res = run_cli(base + c.args);
    EXPECT_EQ(res.exit_code, 2) << c.args << "\n" << res.output;
    EXPECT_NE(res.output.find("error:"), std::string::npos) << c.args;
    EXPECT_NE(res.output.find(c.expect), std::string::npos)
        << c.args << "\n" << res.output;
  }
}

TEST_F(TransportCli, RejectsInvalidFaultPlansAtConfigTime) {
  const std::string base = "cluster " + *edges_ + " " + *dir_ + "/z.clu ";
  const struct {
    const char* args;
    const char* expect;
  } cases[] = {
      {"--faults drop=1.5", "drop"},
      {"--faults drop=0.6,dup=0.5", "sum"},
      {"--faults stall=99 --ranks 4", "stall rank 99"},
      {"--faults stall=abc", "--faults stall"},
      {"--faults bogus=1", "unknown key"},
      {"--faults drop", "key=value"},
      {"--faults exit=1", "--transport socket"},
  };
  for (const auto& c : cases) {
    const auto res = run_cli(base + c.args);
    EXPECT_EQ(res.exit_code, 2) << c.args << "\n" << res.output;
    EXPECT_NE(res.output.find(c.expect), std::string::npos)
        << c.args << "\n" << res.output;
  }
}

TEST(SocketTransport, WatchdogConvictsSilentLivePeerAsStalled) {
  // Rank 0 is alive but silent (its endpoint stays open) — the local
  // watchdog must convict with the *hang* diagnosis.
  dc::TransportTuning tuning;
  tuning.watchdog_timeout_ms = 250;
  std::atomic<int> kind{-1};
  std::atomic<int> accused{-1};
  run_socket_ranks(2, tuning, [&](dc::Comm& comm) {
    if (comm.rank() == 0) {
      // Stay alive well past the peer's verdict, sending nothing.
      // dlint:allow(sleep-sync): the silent-but-alive window is the scenario
      std::this_thread::sleep_for(std::chrono::milliseconds(700));
      return;
    }
    try {
      (void)comm.recv<int>(0, 3);
      ADD_FAILURE() << "recv from a silent peer returned data";
    } catch (const dc::CommFault& f) {
      kind.store(static_cast<int>(f.kind()));
      accused.store(f.rank());
    }
  });
  EXPECT_EQ(kind.load(), static_cast<int>(dc::CommFault::Kind::kStalled));
  EXPECT_EQ(accused.load(), 0);
}
