// Intra-rank thread parallelism (util::ThreadPool + the threaded hot loops):
// the central claim under test is bit-reproducibility — for any thread count,
// the distributed pipeline, sequential Infomap, and Louvain must produce
// partitions and objective values *identical* (==, not close) to the
// single-threaded run, including under seeded transport fault plans. Plus
// unit coverage of the pool itself: exact chunk coverage, caller-runs-slot-0,
// exception propagation, nested-use inline fallback, and reuse.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "comm/fault.hpp"
#include "comm/runtime.hpp"
#include "core/dist_infomap.hpp"
#include "core/louvain.hpp"
#include "core/relaxmap.hpp"
#include "core/seq_infomap.hpp"
#include "graph/builder.hpp"
#include "graph/gen/generators.hpp"
#include "util/thread_pool.hpp"

namespace dc = dinfomap::comm;
namespace core = dinfomap::core;
namespace dg = dinfomap::graph;
namespace gen = dinfomap::graph::gen;
namespace util = dinfomap::util;

namespace {

dg::Csr test_graph() {
  const auto gg = gen::sbm(400, 8, 0.08, 0.004, 5);
  return dg::build_csr(gg.edges, gg.num_vertices);
}

}  // namespace

// ---- ThreadPool unit tests --------------------------------------------------

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  util::ThreadPool pool(4);
  ASSERT_EQ(pool.num_threads(), 4);
  // 103 is deliberately not a multiple of 4: uneven chunk boundaries.
  constexpr std::size_t kN = 103;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  pool.parallel_for(kN, [&](int /*slot*/, std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < kN; ++i)
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ChunksAreContiguousAndSlotOrdered) {
  util::ThreadPool pool(3);
  constexpr std::size_t kN = 17;
  std::vector<std::pair<std::size_t, std::size_t>> chunks(3, {0, 0});
  pool.parallel_for(kN, [&](int slot, std::size_t b, std::size_t e) {
    chunks[static_cast<std::size_t>(slot)] = {b, e};
  });
  // Slot s's chunk must start exactly where slot s-1's ended and the union
  // must be [0, n) — this is what makes slot-order merges replay the serial
  // iteration order.
  EXPECT_EQ(chunks.front().first, 0u);
  EXPECT_EQ(chunks.back().second, kN);
  for (std::size_t s = 1; s < chunks.size(); ++s)
    EXPECT_EQ(chunks[s].first, chunks[s - 1].second) << "slot " << s;
}

TEST(ThreadPool, SmallRangeSkipsEmptyChunksButCoversAll) {
  util::ThreadPool pool(8);
  constexpr std::size_t kN = 3;  // fewer items than slots
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  pool.parallel_for(kN, [&](int /*slot*/, std::size_t b, std::size_t e) {
    ASSERT_LT(b, e) << "empty chunk dispatched";
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < kN; ++i)
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, CallerRunsSlotZero) {
  util::ThreadPool pool(4);
  std::thread::id slot0_id;
  pool.run_slots([&](int slot) {
    if (slot == 0) slot0_id = std::this_thread::get_id();
  });
  EXPECT_EQ(slot0_id, std::this_thread::get_id());
}

TEST(ThreadPool, LowestSlotExceptionWinsAndPoolStaysUsable) {
  util::ThreadPool pool(4);
  try {
    pool.run_slots([](int slot) {
      if (slot >= 1) throw std::runtime_error("boom " + std::to_string(slot));
    });
    FAIL() << "expected the slot exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom 1");
  }
  // The pool must survive a throwing dispatch and keep working.
  std::atomic<int> count{0};
  pool.run_slots([&](int) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 4);
}

TEST(ThreadPool, NestedUseRunsInlineWithoutDeadlock) {
  util::ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  pool.run_slots([&](int slot) {
    if (slot != 0) return;
    // Re-entering the pool from inside a running slot must degrade to inline
    // serial execution (all slots on this thread), not deadlock.
    pool.parallel_for(10, [&](int, std::size_t b, std::size_t e) {
      inner_total.fetch_add(static_cast<int>(e - b));
    });
  });
  EXPECT_EQ(inner_total.load(), 10);
}

TEST(ThreadPool, SingleThreadRunsInline) {
  util::ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  std::size_t covered = 0;
  pool.parallel_for(42, [&](int slot, std::size_t b, std::size_t e) {
    EXPECT_EQ(slot, 0);
    covered += e - b;
  });
  EXPECT_EQ(covered, 42u);
  EXPECT_EQ(pool.dispatches(), 1u);
}

TEST(ThreadPool, ReusedAcrossManyDispatches) {
  util::ThreadPool pool(4);
  std::atomic<std::uint64_t> total{0};
  constexpr int kRounds = 200;
  for (int r = 0; r < kRounds; ++r)
    pool.parallel_for(100, [&](int, std::size_t b, std::size_t e) {
      total.fetch_add(e - b);
    });
  EXPECT_EQ(total.load(), 100u * kRounds);
  EXPECT_EQ(pool.dispatches(), static_cast<std::uint64_t>(kRounds));
  EXPECT_EQ(pool.last_slot_seconds().size(), 4u);
}

// ---- distributed pipeline: bit-identical across thread counts ---------------

TEST(ThreadDeterminism, DistPartitionAndMdlBitIdenticalAcrossThreadCounts) {
  const auto g = test_graph();
  core::DistInfomapConfig base;
  base.num_ranks = 4;
  const auto serial = core::distributed_infomap(g, base);

  for (const int threads : {2, 4}) {
    auto cfg = base;
    cfg.threads_per_rank = threads;
    const auto threaded = core::distributed_infomap(g, cfg);
    EXPECT_EQ(threaded.assignment, serial.assignment) << threads << " threads";
    EXPECT_EQ(threaded.codelength, serial.codelength) << threads << " threads";
    EXPECT_EQ(threaded.stage1_round_codelengths,
              serial.stage1_round_codelengths)
        << threads << " threads";
  }
}

TEST(ThreadDeterminism, ExactHubMovesBitIdenticalAcrossThreadCounts) {
  // exact_hub_moves routes hub decisions through the threaded hub flow scan
  // (broadcast_delegates_exact) — the second parallelized hot loop.
  const auto g = test_graph();
  core::DistInfomapConfig base;
  base.num_ranks = 4;
  base.exact_hub_moves = true;
  const auto serial = core::distributed_infomap(g, base);

  auto cfg = base;
  cfg.threads_per_rank = 4;
  const auto threaded = core::distributed_infomap(g, cfg);
  EXPECT_EQ(threaded.assignment, serial.assignment);
  EXPECT_EQ(threaded.codelength, serial.codelength);
}

TEST(ThreadDeterminism, ThreadedRunBitIdenticalUnderFaultPlan) {
  // Threads + transport faults together: recovery must stay invisible and
  // the threaded commit order must stay exact while retransmits reshuffle
  // the wire underneath it.
  const auto g = test_graph();
  core::DistInfomapConfig base;
  base.num_ranks = 4;
  const auto clean = core::distributed_infomap(g, base);

  dc::FaultPlan plan;
  plan.drop = 0.01;
  plan.duplicate = 0.01;
  plan.reorder = 0.01;
  plan.corrupt = 0.01;
  plan.seed = 321;
  for (const int threads : {1, 4}) {
    auto cfg = base;
    cfg.threads_per_rank = threads;
    cfg.faults = plan;
    const auto faulted = core::distributed_infomap(g, cfg);
    EXPECT_EQ(faulted.assignment, clean.assignment) << threads << " threads";
    EXPECT_EQ(faulted.codelength, clean.codelength) << threads << " threads";
    dc::FaultCounters injected;
    for (const auto& f : faulted.report.faults_injected) injected += f;
    EXPECT_GT(injected.total(), 0u) << "plan never fired";
  }
}

TEST(ThreadDeterminism, ThreadCountEchoedInRunReportWithPoolMetrics) {
  const auto gg = gen::ring_of_cliques(8, 5, 2);
  const auto g = dg::build_csr(gg.edges, gg.num_vertices);
  core::DistInfomapConfig cfg;
  cfg.num_ranks = 4;
  cfg.threads_per_rank = 2;
  cfg.obs.enabled = true;
  const auto result = core::distributed_infomap(g, cfg);
  const auto json = result.report.to_json();
  EXPECT_NE(json.find("\"threads_per_rank\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"pool.tasks\""), std::string::npos);
  EXPECT_NE(json.find("\"pool.dispatches\""), std::string::npos);
  EXPECT_NE(json.find("\"pool.scratch_bytes\""), std::string::npos);
  EXPECT_NE(json.find("\"moves.skipped_unsynced\""), std::string::npos);
  EXPECT_NE(json.find("\"comm.packed_exchanges\""), std::string::npos);
}

// ---- packed alltoallv (merge-phase exchange coalescing) ---------------------

namespace {

void packed_exchange_roundtrip(const dc::Runtime::Options& options) {
  auto report = dc::Runtime::run(
      3,
      [](dc::Comm& comm) {
        const int p = comm.size();
        std::vector<std::vector<int>> ints(p);
        std::vector<std::vector<double>> doubles(p);
        for (int r = 0; r < p; ++r) {
          for (int i = 0; i <= comm.rank(); ++i)
            ints[r].push_back(comm.rank() * 100 + r * 10 + i);
          // Leave the self stream empty: zero-length streams must round-trip.
          if (r != comm.rank()) doubles[r].push_back(comm.rank() + r * 0.5);
        }
        auto [ints_in, doubles_in] = comm.alltoallv_packed(ints, doubles);
        for (int src = 0; src < p; ++src) {
          ASSERT_EQ(ints_in[src].size(), static_cast<std::size_t>(src + 1));
          for (int i = 0; i <= src; ++i)
            ASSERT_EQ(ints_in[src][i], src * 100 + comm.rank() * 10 + i);
          if (src != comm.rank()) {
            ASSERT_EQ(doubles_in[src].size(), 1u);
            ASSERT_EQ(doubles_in[src][0], src + comm.rank() * 0.5);
          } else {
            ASSERT_TRUE(doubles_in[src].empty());
          }
        }
      },
      options);
  EXPECT_FALSE(report.aborted);
}

}  // namespace

TEST(PackedExchange, RoundTripsHeterogeneousStreams) {
  packed_exchange_roundtrip({});
}

TEST(PackedExchange, RoundTripsUnderFaultPlan) {
  dc::Runtime::Options opt;
  opt.faults.drop = 0.05;
  opt.faults.corrupt = 0.05;
  opt.faults.seed = 77;
  packed_exchange_roundtrip(opt);
}

// ---- sequential baselines: bit-identical across thread counts ---------------

TEST(ThreadDeterminism, SeqInfomapBitIdenticalAcrossThreadCounts) {
  const auto g = test_graph();
  core::InfomapConfig base;
  base.fine_tune = true;
  base.coarse_tune = true;  // tuning sweeps must inherit determinism too
  const auto serial = core::sequential_infomap(g, base);

  for (const int threads : {2, 4}) {
    auto cfg = base;
    cfg.num_threads = threads;
    const auto threaded = core::sequential_infomap(g, cfg);
    EXPECT_EQ(threaded.assignment, serial.assignment) << threads << " threads";
    EXPECT_EQ(threaded.codelength, serial.codelength) << threads << " threads";
    ASSERT_EQ(threaded.trace.size(), serial.trace.size());
    for (std::size_t i = 0; i < serial.trace.size(); ++i) {
      EXPECT_EQ(threaded.trace[i].moves, serial.trace[i].moves) << "level " << i;
      EXPECT_EQ(threaded.trace[i].codelength_after,
                serial.trace[i].codelength_after)
          << "level " << i;
    }
  }
}

TEST(ThreadDeterminism, LouvainBitIdenticalAcrossThreadCounts) {
  const auto g = test_graph();
  core::LouvainConfig base;
  const auto serial = core::louvain(g, base);

  for (const int threads : {2, 4}) {
    auto cfg = base;
    cfg.num_threads = threads;
    const auto threaded = core::louvain(g, cfg);
    EXPECT_EQ(threaded.assignment, serial.assignment) << threads << " threads";
    EXPECT_EQ(threaded.modularity, serial.modularity) << threads << " threads";
  }
}

TEST(ThreadSmoke, RelaxMapRunsOnPersistentPool) {
  // RelaxMap is intentionally relaxed (lock-free reads → nondeterministic
  // across thread counts); just assert the pooled version still produces a
  // valid improving partition.
  const auto g = test_graph();
  core::RelaxMapConfig cfg;
  cfg.num_threads = 4;
  const auto result = core::relaxmap(g, cfg);
  EXPECT_GT(result.codelength, 0.0);
  EXPECT_LE(result.codelength, result.singleton_codelength);
  EXPECT_EQ(result.assignment.size(), static_cast<std::size_t>(g.num_vertices()));
}
