// dlint behaves as documented: every rule fires on its must-fire fixture,
// stays silent on the clean ones, respects dlint:allow markers, and emits
// parseable JSON. The binary and fixture paths are injected by CMake
// (DLINT_BIN / DLINT_FIXTURES).
#include <gtest/gtest.h>
#include <sys/wait.h>

#include <array>
#include <cstdio>
#include <string>

namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;  // stdout only; findings go to stdout
};

RunResult run_dlint(const std::string& args) {
  const std::string cmd =
      std::string(DLINT_BIN) + " " + args + " 2>/dev/null";
  RunResult r;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return r;
  std::array<char, 4096> buf{};
  std::size_t n = 0;
  while ((n = fread(buf.data(), 1, buf.size(), pipe)) > 0)
    r.output.append(buf.data(), n);
  const int status = pclose(pipe);
  // popen runs through /bin/sh; WEXITSTATUS gives the child's exit code.
  r.exit_code = (status >= 0 && WIFEXITED(status)) ? WEXITSTATUS(status) : -1;
  return r;
}

std::string fixtures_args(const std::string& extra = "") {
  return "--root " DLINT_FIXTURES " --order-dirs order_sensitive " + extra +
         " fixtures";
}

std::size_t count_rule(const std::string& out, const std::string& rule) {
  const std::string tag = "[" + rule + "]";
  std::size_t count = 0;
  for (auto pos = out.find(tag); pos != std::string::npos;
       pos = out.find(tag, pos + tag.size()))
    ++count;
  return count;
}

TEST(Dlint, EveryRuleFiresOnItsFixture) {
  const RunResult r = run_dlint(fixtures_args());
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_GE(count_rule(r.output, "unordered-iter"), 1u) << r.output;
  EXPECT_GE(count_rule(r.output, "float-accum-order"), 1u) << r.output;
  EXPECT_GE(count_rule(r.output, "raw-rng"), 1u) << r.output;
  EXPECT_GE(count_rule(r.output, "wall-clock"), 1u) << r.output;
  EXPECT_GE(count_rule(r.output, "raw-mutex-lock"), 1u) << r.output;
  EXPECT_GE(count_rule(r.output, "sleep-sync"), 1u) << r.output;
  EXPECT_GE(count_rule(r.output, "lock-order"), 1u) << r.output;
  EXPECT_GE(count_rule(r.output, "unknown-rule"), 1u) << r.output;
}

TEST(Dlint, FindingsCarryFileAndLine) {
  const RunResult r = run_dlint(fixtures_args());
  // Human format is path:line: [rule] message — clickable in editors.
  EXPECT_NE(r.output.find("raw_rng_fire.cpp:"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find(": [raw-rng] "), std::string::npos) << r.output;
}

TEST(Dlint, SilentOnCleanFixtures) {
  // Scanning only the must-not-fire fixtures: zero findings, exit 0. This is
  // also the regression test for comment/string stripping — the clean
  // fixtures contain every trigger pattern inside comments and literals.
  const char* clean[] = {
      "fixtures/order_sensitive/unordered_iter_clean.cpp",
      "fixtures/order_sensitive/unordered_iter_allow.cpp",
      "fixtures/float_accum_clean.cpp",
      "fixtures/raw_rng_clean.cpp",
      "fixtures/wall_clock_clean.cpp",
      "fixtures/raw_mutex_clean.cpp",
      "fixtures/sleep_sync_clean.cpp",
      "fixtures/raw_string_prefix_clean.cpp",
      "fixtures/comment_splice_clean.cpp",
      "fixtures/comment_gap_allow_clean.cpp",
      "fixtures/multi_rule_allow_clean.cpp",
      "fixtures/lock_order_clean.cpp",
      "fixtures/lock_order_pair_clean.cpp",
  };
  std::string paths;
  for (const char* f : clean) paths += std::string(" ") + f;
  const RunResult r = run_dlint(
      "--root " DLINT_FIXTURES " --order-dirs order_sensitive" + paths);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_EQ(r.output, "") << r.output;
}

TEST(Dlint, AllowMarkerSuppressesBothPlacements) {
  // unordered_iter_allow.cpp uses both a same-line marker and a
  // comment-block-above marker; raw_mutex_clean.cpp uses a same-line one.
  const RunResult r = run_dlint(
      "--root " DLINT_FIXTURES
      " --order-dirs order_sensitive"
      " fixtures/order_sensitive/unordered_iter_allow.cpp"
      " fixtures/raw_mutex_clean.cpp");
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST(Dlint, AllowBlockAboveSurvivesBlankLines) {
  // The marker sits in a comment block separated from its code line by more
  // comment prose and a fully blank line; attachment must roll forward.
  const RunResult r = run_dlint(
      "--root " DLINT_FIXTURES " fixtures/comment_gap_allow_clean.cpp");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_EQ(r.output, "") << r.output;
}

TEST(Dlint, MultiRuleAllowSuppressesEveryNamedRule) {
  // One comma-separated allow marker covers a line tripping two rules —
  // in both the block-above and same-line (spaces around the comma) forms.
  const RunResult r = run_dlint(
      "--root " DLINT_FIXTURES " fixtures/multi_rule_allow_clean.cpp");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_EQ(r.output, "") << r.output;
}

TEST(Dlint, UnknownRuleNameIsItselfAFinding) {
  // A typo'd allow would silently suppress nothing; dlint must say so.
  const RunResult r =
      run_dlint("--root " DLINT_FIXTURES " fixtures/unknown_rule_fire.cpp");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_EQ(count_rule(r.output, "unknown-rule"), 1u) << r.output;
  EXPECT_NE(r.output.find("no-such-rule"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("--list-rules"), std::string::npos) << r.output;
}

TEST(Dlint, CrlfFilesKeepLineNumbersAndAllowMarkers) {
  // CRLF endings must not shift line numbers, break the backslash-splice
  // check, or hide the allow marker: exactly one finding, on line 9.
  const RunResult r =
      run_dlint("--root " DLINT_FIXTURES " fixtures/crlf_fire.cpp");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_EQ(count_rule(r.output, "raw-rng"), 1u) << r.output;
  EXPECT_EQ(count_rule(r.output, "sleep-sync"), 0u) << r.output;
  EXPECT_NE(r.output.find("crlf_fire.cpp:9:"), std::string::npos) << r.output;
}

TEST(Dlint, RawStringPrefixesAndCommentSplicesStripClean) {
  // u8R/uR/UR/LR prefixes, custom delimiters, multi-line raw strings, and
  // backslash-spliced comments/strings all hide their trigger patterns.
  const RunResult r = run_dlint("--root " DLINT_FIXTURES
                                " fixtures/raw_string_prefix_clean.cpp"
                                " fixtures/comment_splice_clean.cpp");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_EQ(r.output, "") << r.output;
}

TEST(Dlint, LockOrderCycleNamesBothSites) {
  const RunResult r =
      run_dlint("--root " DLINT_FIXTURES " fixtures/lock_order_fire.cpp");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_EQ(count_rule(r.output, "lock-order"), 1u) << r.output;
  // One finding, but it must name BOTH order-reversing acquisition sites.
  EXPECT_NE(
      r.output.find(
          "acquired lock_order_fire.cpp::b while holding lock_order_fire.cpp::a"),
      std::string::npos)
      << r.output;
  EXPECT_NE(
      r.output.find(
          "acquired lock_order_fire.cpp::a while holding lock_order_fire.cpp::b"),
      std::string::npos)
      << r.output;
}

TEST(Dlint, LockOrderSanctionedPairGuardIsExempt) {
  // lock_order_pair_clean.cpp acquires the same SpinLock pair in both orders
  // through a guard class carrying dlint:ordered-pair(SpinLock); the
  // promised internal total order makes that legal.
  const RunResult r =
      run_dlint("--root " DLINT_FIXTURES " fixtures/lock_order_pair_clean.cpp");
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST(Dlint, OrderDirGatingScopesUnorderedIter) {
  // float_accum_fire.cpp sits outside the order-sensitive dirs: the
  // accumulation rule fires (it applies everywhere) but unordered-iter does
  // not (it is scoped to the dirs where iteration order can reach output).
  const RunResult r =
      run_dlint("--root " DLINT_FIXTURES
                " --order-dirs order_sensitive fixtures/float_accum_fire.cpp");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_GE(count_rule(r.output, "float-accum-order"), 1u) << r.output;
  EXPECT_EQ(count_rule(r.output, "unordered-iter"), 0u) << r.output;
}

TEST(Dlint, JsonModeParses) {
  const RunResult r = run_dlint("--json " + fixtures_args());
  EXPECT_EQ(r.exit_code, 1) << r.output;
  // Structural spot-checks without a JSON library: object braces, the three
  // top-level keys, and at least one finding with the expected fields.
  EXPECT_EQ(r.output.rfind("{", 0), 0u) << r.output;
  EXPECT_NE(r.output.find("\"findings\":["), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("\"files_scanned\":"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("\"count\":"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("\"rule\":\"raw-rng\""), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("\"line\":"), std::string::npos) << r.output;
  // Balanced braces/brackets — catches truncated or unescaped output.
  long depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < r.output.size(); ++i) {
    const char c = r.output[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{' || c == '[') ++depth;
    else if (c == '}' || c == ']') --depth;
  }
  EXPECT_EQ(depth, 0) << r.output;
}

TEST(Dlint, UnknownPathExitsTwo) {
  const RunResult r = run_dlint("no/such/path.cpp");
  EXPECT_EQ(r.exit_code, 2);
}

TEST(Dlint, ListRules) {
  const RunResult r = run_dlint("--list-rules");
  EXPECT_EQ(r.exit_code, 0);
  for (const char* rule :
       {"unordered-iter", "raw-rng", "wall-clock", "raw-mutex-lock",
        "float-accum-order", "sleep-sync", "lock-order", "unknown-rule"})
    EXPECT_NE(r.output.find(rule), std::string::npos) << r.output;
}

}  // namespace
