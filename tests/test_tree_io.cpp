#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/seq_infomap.hpp"
#include "graph/builder.hpp"
#include "graph/gen/generators.hpp"
#include "io/tree_io.hpp"
#include "util/check.hpp"

namespace dio = dinfomap::io;
namespace dg = dinfomap::graph;

TEST(TreePaths, SingleLevelTwoModules) {
  // Finest (only) level: {0,1,2} in module 7, {3,4} in module 3.
  const std::vector<dg::Partition> levels = {{7, 7, 7, 3, 3}};
  const auto paths = dio::tree_paths(levels);
  ASSERT_EQ(paths.size(), 5u);
  // Larger module first → module 7 is "1", module 3 is "2".
  EXPECT_EQ(paths[0][0], 1u);
  EXPECT_EQ(paths[3][0], 2u);
  // Leaf positions within each module are 1-based and unique.
  EXPECT_EQ(paths[0].size(), 2u);
  EXPECT_NE(paths[0][1], paths[1][1]);
}

TEST(TreePaths, TwoLevelNesting) {
  // Finest: four groups of 2; coarser: first two groups together, last two
  // together.
  const std::vector<dg::Partition> levels = {
      {0, 0, 1, 1, 2, 2, 3, 3},   // finest
      {0, 0, 0, 0, 1, 1, 1, 1}};  // coarsest
  const auto paths = dio::tree_paths(levels);
  // Path depth: coarsest + finest + leaf = 3 components.
  ASSERT_EQ(paths[0].size(), 3u);
  // Vertices 0 and 2 share the top module, differ in the submodule.
  EXPECT_EQ(paths[0][0], paths[2][0]);
  EXPECT_NE(paths[0][1], paths[2][1]);
  // Vertices 0 and 4 differ at the top.
  EXPECT_NE(paths[0][0], paths[4][0]);
}

TEST(TreePaths, PathsUniquePerVertex) {
  const auto gg = dinfomap::graph::gen::lfr_lite({}, 3);
  const auto g = dg::build_csr(gg.edges, gg.num_vertices);
  const auto result = dinfomap::core::sequential_infomap(g);
  ASSERT_FALSE(result.level_assignments.empty());
  const auto paths = dio::tree_paths(result.level_assignments);
  std::set<std::vector<dg::VertexId>> unique(paths.begin(), paths.end());
  EXPECT_EQ(unique.size(), paths.size());
}

TEST(TreePaths, RejectsEmptyAndMismatched) {
  EXPECT_THROW(dio::tree_paths({}), dinfomap::ContractViolation);
  EXPECT_THROW(dio::tree_paths({{0, 1}, {0}}), dinfomap::ContractViolation);
}

TEST(TreeWrite, FileRoundTripShape) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("dinfomap_tree_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "out.tree").string();

  const std::vector<dg::Partition> levels = {{0, 0, 1, 1}};
  dio::write_tree(path, levels, {0.4, 0.3, 0.2, 0.1});

  std::ifstream in(path);
  std::string line;
  std::getline(in, line);  // header comment
  EXPECT_EQ(line[0], '#');
  int rows = 0;
  while (std::getline(in, line)) {
    ++rows;
    // "a:b flow "name"" — must contain a colon, a space, and a quoted name.
    EXPECT_NE(line.find(':'), std::string::npos);
    EXPECT_NE(line.find('"'), std::string::npos);
  }
  EXPECT_EQ(rows, 4);
  std::filesystem::remove_all(dir);
}

TEST(TreeWrite, FlowSizeMismatchRejected) {
  EXPECT_THROW(dio::write_tree("/tmp/x.tree", {{0, 1}}, {1.0}),
               dinfomap::ContractViolation);
}
