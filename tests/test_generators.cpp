#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "graph/builder.hpp"
#include "graph/gen/generators.hpp"
#include "graph/stats.hpp"
#include "util/check.hpp"

namespace dg = dinfomap::graph;
namespace gen = dinfomap::graph::gen;

TEST(ErdosRenyi, ExactEdgeCountNoDuplicates) {
  const auto g = gen::erdos_renyi(100, 500, 1);
  EXPECT_EQ(g.num_vertices, 100u);
  EXPECT_EQ(g.edges.size(), 500u);
  std::unordered_set<std::uint64_t> seen;
  for (const auto& e : g.edges) {
    EXPECT_NE(e.u, e.v);
    const auto key = (std::uint64_t{std::min(e.u, e.v)} << 32) | std::max(e.u, e.v);
    EXPECT_TRUE(seen.insert(key).second) << "duplicate edge";
  }
}

TEST(ErdosRenyi, SeedReproducible) {
  EXPECT_EQ(gen::erdos_renyi(50, 100, 7).edges, gen::erdos_renyi(50, 100, 7).edges);
  EXPECT_NE(gen::erdos_renyi(50, 100, 7).edges, gen::erdos_renyi(50, 100, 8).edges);
}

TEST(ErdosRenyi, RejectsImpossibleEdgeCount) {
  EXPECT_THROW(gen::erdos_renyi(3, 4, 1), dinfomap::ContractViolation);
}

TEST(BarabasiAlbert, ProducesHeavyHubs) {
  const auto g = gen::barabasi_albert(2000, 2, 3);
  EXPECT_EQ(g.num_vertices, 2000u);
  const auto csr = dg::build_csr(g.edges, g.num_vertices);
  const auto stats = dg::degree_stats(csr, 0);
  // Preferential attachment must create hubs far above the mean (~4).
  EXPECT_GT(stats.max_degree, 40u);
  EXPECT_LT(stats.mean_degree, 5.0);
}

TEST(BarabasiAlbert, EdgeCountFormula) {
  const gen::GeneratedGraph g = gen::barabasi_albert(100, 3, 5);
  // seed clique C(4,2)=6 + 96 joins × 3 edges.
  EXPECT_EQ(g.edges.size(), 6u + 96u * 3u);
}

TEST(BarabasiAlbert, RejectsBadParams) {
  EXPECT_THROW(gen::barabasi_albert(3, 3, 1), dinfomap::ContractViolation);
  EXPECT_THROW(gen::barabasi_albert(10, 0, 1), dinfomap::ContractViolation);
}

TEST(Rmat, ShapeAndSkew) {
  const auto g = gen::rmat(10, 8, 0.57, 0.19, 0.19, 11);
  EXPECT_EQ(g.num_vertices, 1024u);
  EXPECT_LE(g.edges.size(), 8192u);
  EXPECT_GT(g.edges.size(), 7000u);  // only self-loops dropped
  const auto csr = dg::build_csr(g.edges, g.num_vertices);
  const auto stats = dg::degree_stats(csr, 0);
  EXPECT_GT(stats.max_degree, 50u);  // skewed corners make hubs
}

TEST(Rmat, RejectsBadCorners) {
  EXPECT_THROW(gen::rmat(5, 4, 0.5, 0.5, 0.2, 1), dinfomap::ContractViolation);
}

TEST(Sbm, GroundTruthBlocksAndDensity) {
  const auto g = gen::sbm(400, 4, 0.2, 0.005, 17);
  ASSERT_TRUE(g.ground_truth.has_value());
  const auto& truth = *g.ground_truth;
  // Equal blocks of 100.
  for (dg::VertexId b = 0; b < 4; ++b) {
    const auto count = std::count(truth.begin(), truth.end(), b);
    EXPECT_EQ(count, 100);
  }
  std::uint64_t intra = 0, inter = 0;
  for (const auto& e : g.edges)
    (truth[e.u] == truth[e.v] ? intra : inter) += 1;
  // Expected: intra ≈ 4 * C(100,2) * 0.2 = 3960; inter ≈ 6*10000*0.005 = 300.
  EXPECT_NEAR(static_cast<double>(intra), 3960.0, 400.0);
  EXPECT_NEAR(static_cast<double>(inter), 300.0, 120.0);
}

TEST(Sbm, NoSelfLoopsNoDuplicates) {
  const auto g = gen::sbm(200, 2, 0.3, 0.02, 23);
  std::unordered_set<std::uint64_t> seen;
  for (const auto& e : g.edges) {
    EXPECT_NE(e.u, e.v);
    const auto key = (std::uint64_t{std::min(e.u, e.v)} << 32) | std::max(e.u, e.v);
    EXPECT_TRUE(seen.insert(key).second);
  }
}

TEST(LfrLite, CoversAllVerticesWithCommunities) {
  gen::LfrLiteParams p;
  p.n = 2000;
  p.mixing = 0.2;
  const auto g = gen::lfr_lite(p, 29);
  ASSERT_TRUE(g.ground_truth.has_value());
  EXPECT_EQ(g.ground_truth->size(), 2000u);
  // Every community within size bounds (last may absorb the tail).
  std::unordered_map<dg::VertexId, int> sizes;
  for (auto c : *g.ground_truth) ++sizes[c];
  EXPECT_GT(sizes.size(), 5u);
  for (const auto& [c, s] : sizes) EXPECT_GE(s, static_cast<int>(p.min_community));
}

TEST(LfrLite, MixingControlsInterEdges) {
  gen::LfrLiteParams p;
  p.n = 3000;
  p.mixing = 0.1;
  const auto low = gen::lfr_lite(p, 31);
  p.mixing = 0.5;
  const auto high = gen::lfr_lite(p, 31);
  auto inter_fraction = [](const gen::GeneratedGraph& g) {
    std::uint64_t inter = 0;
    for (const auto& e : g.edges)
      inter += (*g.ground_truth)[e.u] != (*g.ground_truth)[e.v];
    return static_cast<double>(inter) / static_cast<double>(g.edges.size());
  };
  EXPECT_LT(inter_fraction(low), 0.25);
  EXPECT_GT(inter_fraction(high), 0.35);
}

TEST(RingOfCliques, ExactStructure) {
  const auto g = gen::ring_of_cliques(5, 4, 0);
  EXPECT_EQ(g.num_vertices, 20u);
  // 5 cliques × C(4,2) + 5 bridges.
  EXPECT_EQ(g.edges.size(), 5u * 6u + 5u);
  ASSERT_TRUE(g.ground_truth.has_value());
  for (dg::VertexId v = 0; v < 20; ++v)
    EXPECT_EQ((*g.ground_truth)[v], v / 4);
}

TEST(RingOfCliques, RejectsDegenerate) {
  EXPECT_THROW(gen::ring_of_cliques(1, 4, 0), dinfomap::ContractViolation);
  EXPECT_THROW(gen::ring_of_cliques(3, 1, 0), dinfomap::ContractViolation);
}

TEST(ConfigurationModel, RespectsDegreeSequenceApproximately) {
  // Degrees are preserved up to dropped self-pairs and combined parallels.
  std::vector<dg::VertexId> degrees(100, 4);
  degrees[0] = 20;  // one hub
  const auto g = gen::configuration_model(degrees, 7);
  const auto csr = dg::build_csr(g.edges, g.num_vertices);
  EXPECT_GE(csr.degree(0), 14u);
  double total = 0;
  for (dg::VertexId v = 0; v < 100; ++v) total += csr.degree(v);
  EXPECT_GT(total, 0.9 * (99 * 4 + 20));
}

TEST(ConfigurationModel, RejectsOddDegreeSum) {
  EXPECT_THROW(gen::configuration_model({3, 2}, 1), dinfomap::ContractViolation);
  EXPECT_THROW(gen::configuration_model({}, 1), dinfomap::ContractViolation);
}

TEST(ConfigurationModel, SeedStable) {
  const std::vector<dg::VertexId> degrees(60, 6);
  EXPECT_EQ(gen::configuration_model(degrees, 5).edges,
            gen::configuration_model(degrees, 5).edges);
}

// Property sweep: every generator yields a CSR that validates.
class GeneratorValidation : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorValidation, ::testing::Values(1, 2, 3));

TEST_P(GeneratorValidation, AllFamiliesBuildValidCsr) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const gen::GeneratedGraph graphs[] = {
      gen::erdos_renyi(200, 600, seed),
      gen::barabasi_albert(300, 2, seed),
      gen::rmat(8, 8, 0.57, 0.19, 0.19, seed),
      gen::sbm(200, 4, 0.2, 0.01, seed),
      gen::lfr_lite({}, seed),
      gen::ring_of_cliques(6, 5, seed),
  };
  for (const auto& g : graphs) {
    const auto csr = dg::build_csr(g.edges, g.num_vertices);
    EXPECT_TRUE(csr.validate());
    if (g.ground_truth) {
      EXPECT_EQ(g.ground_truth->size(), g.num_vertices);
    }
  }
}
