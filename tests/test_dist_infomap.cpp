// End-to-end and invariant tests of the distributed Infomap (Alg. 2 + 3).
#include <gtest/gtest.h>

#include "core/dist_infomap.hpp"
#include "core/flowgraph.hpp"
#include "core/seq_infomap.hpp"
#include "graph/builder.hpp"
#include "graph/gen/generators.hpp"
#include "quality/metrics.hpp"
#include "util/check.hpp"

namespace dc = dinfomap::core;
namespace dg = dinfomap::graph;
namespace gen = dinfomap::graph::gen;

namespace {
dc::DistInfomapConfig config_for(int p) {
  dc::DistInfomapConfig cfg;
  cfg.num_ranks = p;
  return cfg;
}
}  // namespace

TEST(DistInfomap, SingleRankMatchesProblemShape) {
  const auto gg = gen::ring_of_cliques(6, 4, 0);
  const auto g = dg::build_csr(gg.edges, gg.num_vertices);
  const auto result = dc::distributed_infomap(g, config_for(1));
  EXPECT_EQ(result.assignment.size(), g.num_vertices());
  EXPECT_EQ(result.num_modules(), 6u);
  EXPECT_DOUBLE_EQ(
      dinfomap::quality::nmi(result.assignment, *gg.ground_truth), 1.0);
}

TEST(DistInfomap, RecoversRingOfCliquesAcrossRanks) {
  const auto gg = gen::ring_of_cliques(10, 5, 0);
  const auto g = dg::build_csr(gg.edges, gg.num_vertices);
  const auto seq = dc::sequential_infomap(g);
  for (int p : {2, 3, 4}) {
    const auto result = dc::distributed_infomap(g, config_for(p));
    // The paper's own distributed-vs-sequential agreement is NMI ≈ 0.8
    // (Table 2); on this crisp testbed we hold it to ≥ 0.9 plus a tight
    // codelength bound.
    EXPECT_GT(dinfomap::quality::nmi(result.assignment, *gg.ground_truth), 0.9)
        << "p=" << p;
    EXPECT_LT(result.codelength, seq.codelength * 1.10) << "p=" << p;
  }
}

TEST(DistInfomap, SingletonCodelengthMatchesSequential) {
  // The exact-aggregation swap must reproduce the sequential singleton L
  // bit-for-bit (modulo reduction order) at startup.
  const auto gg = gen::lfr_lite({}, 3);
  const auto g = dg::build_csr(gg.edges, gg.num_vertices);
  const auto seq = dc::sequential_infomap(g);
  for (int p : {1, 2, 4}) {
    const auto dist = dc::distributed_infomap(g, config_for(p));
    EXPECT_NEAR(dist.singleton_codelength, seq.singleton_codelength, 1e-9)
        << "p=" << p;
  }
}

TEST(DistInfomap, ReportedCodelengthMatchesGatheredAssignment) {
  // The distributed L (computed by allreduce over module homes) must equal
  // an independent sequential scoring of the gathered assignment.
  const auto gg = gen::sbm(240, 6, 0.25, 0.01, 7);
  const auto g = dg::build_csr(gg.edges, gg.num_vertices);
  const auto fg = dc::make_flow_graph(g);
  for (int p : {1, 2, 3, 4}) {
    const auto dist = dc::distributed_infomap(g, config_for(p));
    EXPECT_NEAR(dist.codelength,
                dc::codelength_of_partition(fg, dist.assignment), 1e-9)
        << "p=" << p;
  }
}

TEST(DistInfomap, QualityCloseToSequential) {
  // Fig. 4's claim: distributed MDL converges close to sequential.
  const auto gg = gen::lfr_lite({}, 19);
  const auto g = dg::build_csr(gg.edges, gg.num_vertices);
  const auto seq = dc::sequential_infomap(g);
  for (int p : {2, 4}) {
    const auto dist = dc::distributed_infomap(g, config_for(p));
    EXPECT_LT(dist.codelength, seq.singleton_codelength);
    // Within 5% of the sequential optimum.
    EXPECT_LT(dist.codelength, seq.codelength * 1.05) << "p=" << p;
  }
}

TEST(DistInfomap, DeterministicForFixedConfig) {
  const auto gg = gen::lfr_lite({}, 23);
  const auto g = dg::build_csr(gg.edges, gg.num_vertices);
  const auto a = dc::distributed_infomap(g, config_for(3));
  const auto b = dc::distributed_infomap(g, config_for(3));
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_DOUBLE_EQ(a.codelength, b.codelength);
}

TEST(DistInfomap, TraceMonotoneAndStagesRecorded) {
  const auto gg = gen::lfr_lite({}, 29);
  const auto g = dg::build_csr(gg.edges, gg.num_vertices);
  const auto result = dc::distributed_infomap(g, config_for(4));
  ASSERT_GE(result.trace.size(), 1u);
  // Near-monotone: one synchronous overshoot per level is tolerated (the
  // level stops on regression); see test_dist_property for the sweep.
  for (const auto& row : result.trace)
    EXPECT_LE(row.codelength_after, row.codelength_before * 1.05 + 1e-9);
  EXPECT_GT(result.stage1_rounds, 0);
  EXPECT_GE(result.stage2_levels, 0);
  // Strong first merge, as in Fig. 5 (merging rate ≈ 50%+ after stage 1).
  EXPECT_LT(result.trace.front().num_modules,
            result.trace.front().level_vertices);
}

TEST(DistInfomap, PhaseWorkCountersPopulated) {
  const auto gg = gen::lfr_lite({}, 31);
  const auto g = dg::build_csr(gg.edges, gg.num_vertices);
  const int p = 4;
  const auto result = dc::distributed_infomap(g, config_for(p));
  for (int ph = 0; ph < dc::kNumPhases; ++ph)
    ASSERT_EQ(result.work[ph].size(), static_cast<std::size_t>(p));
  std::uint64_t find_arcs = 0, swap_bytes = 0, bcast_msgs = 0;
  for (int r = 0; r < p; ++r) {
    find_arcs += result.work[0][r].arcs_scanned;
    bcast_msgs += result.work[1][r].messages;
    swap_bytes += result.work[2][r].bytes;
  }
  EXPECT_GT(find_arcs, 0u);
  EXPECT_GT(swap_bytes, 0u);
  EXPECT_GT(bcast_msgs, 0u);  // delegate consensus communicates
}

TEST(DistInfomap, HandlesHubGraph) {
  // BA graphs have strong hubs → exercises delegates hard.
  const auto gg = gen::barabasi_albert(1200, 2, 3);
  const auto g = dg::build_csr(gg.edges, gg.num_vertices);
  const auto fg = dc::make_flow_graph(g);
  const auto seq = dc::sequential_infomap(g);
  const auto dist = dc::distributed_infomap(g, config_for(4));
  EXPECT_NEAR(dist.codelength,
              dc::codelength_of_partition(fg, dist.assignment), 1e-9);
  EXPECT_LT(dist.codelength, seq.singleton_codelength);
  EXPECT_LT(dist.codelength, seq.codelength * 1.10);
}

TEST(DistInfomap, IsolatedVerticesSurvive) {
  const auto g = dg::build_csr({{0, 1}, {1, 2}, {0, 2}}, 7);  // 3..6 isolated
  const auto result = dc::distributed_infomap(g, config_for(2));
  EXPECT_EQ(result.assignment.size(), 7u);
  // Isolated vertices keep distinct singleton modules.
  for (dg::VertexId v = 3; v < 7; ++v)
    for (dg::VertexId w = v + 1; w < 7; ++w)
      EXPECT_NE(result.assignment[v], result.assignment[w]);
}

TEST(DistInfomap, ExplicitPartitionOverloadAgrees) {
  const auto gg = gen::ring_of_cliques(6, 5, 0);
  const auto g = dg::build_csr(gg.edges, gg.num_vertices);
  const auto cfg = config_for(3);
  const auto part = dinfomap::partition::make_delegate(
      g, 3, dc::resolve_degree_threshold(g, cfg));
  const auto a = dc::distributed_infomap(g, part, cfg);
  const auto b = dc::distributed_infomap(g, cfg);
  EXPECT_EQ(a.assignment, b.assignment);
}

TEST(DistInfomap, RejectsRankMismatch) {
  const auto g = dg::build_csr({{0, 1}, {1, 2}});
  const auto part = dinfomap::partition::make_delegate(g, 2);
  auto cfg = config_for(3);
  EXPECT_THROW(dc::distributed_infomap(g, part, cfg),
               dinfomap::ContractViolation);
}

TEST(DistInfomap, MinLabelBreaksTwoVertexBoundaryOscillation) {
  // The §3.4 anti-bouncing scenario in miniature: two cliques joined by a
  // single bridge, partitioned across two ranks (ownership is v mod p, so
  // the bridge endpoints land on different ranks). In a synchronous round
  // each bridge endpoint may greedily move into the other's module and swap
  // forever; the minimum-label strategy (dist_infomap.cpp, boundary-move
  // gate) must let exactly one side through so the rounds converge.
  dg::EdgeList edges;
  const auto clique = [&](dg::VertexId base) {
    for (dg::VertexId i = 0; i < 6; ++i)
      for (dg::VertexId j = i + 1; j < 6; ++j)
        edges.push_back({base + i, base + j, 1.0});
  };
  clique(0);
  clique(6);
  edges.push_back({5, 6, 1.0});  // the bridge: 5 is odd-rank, 6 even-rank at p=2
  const auto g = dg::build_csr(edges, 12);

  auto cfg = config_for(2);
  cfg.min_label = true;
  const auto with = dc::distributed_infomap(g, cfg);
  EXPECT_LT(with.stage1_rounds, cfg.max_rounds)
      << "min_label on: rounds must converge, not run to the cap";
  EXPECT_EQ(with.num_modules(), 2u);
  EXPECT_LT(with.codelength, with.singleton_codelength);

  // With the strategy off the protocol must still terminate (the round cap
  // and round_theta bound any residual bouncing) and produce a valid result.
  cfg.min_label = false;
  const auto without = dc::distributed_infomap(g, cfg);
  EXPECT_LE(without.stage1_rounds, cfg.max_rounds);
  EXPECT_EQ(without.assignment.size(), g.num_vertices());
  EXPECT_LT(without.codelength, without.singleton_codelength);
}

TEST(DistInfomap, MinLabelAblationStillConverges) {
  const auto gg = gen::lfr_lite({}, 37);
  const auto g = dg::build_csr(gg.edges, gg.num_vertices);
  auto cfg = config_for(4);
  cfg.min_label = false;
  const auto result = dc::distributed_infomap(g, cfg);
  EXPECT_LT(result.codelength, result.singleton_codelength);
}

TEST(DistInfomap, NaiveSwapAblationStillTerminatesConsistently) {
  // The A3 ablation (naive boundary-only swap) lets per-rank module tables
  // drift; the quantitative quality comparison is reported by
  // bench_ablation_swap. Here assert the invariants that must hold in both
  // modes: termination, a valid gathered assignment, and a reported L that
  // matches the exact rescoring (reporting always uses the aggregation).
  const auto gg = gen::lfr_lite({}, 41);
  const auto g = dg::build_csr(gg.edges, gg.num_vertices);
  auto full_cfg = config_for(4);
  auto naive_cfg = full_cfg;
  naive_cfg.whole_module_swap = false;
  const auto fg = dc::make_flow_graph(g);
  for (const auto& cfg : {full_cfg, naive_cfg}) {
    const auto result = dc::distributed_infomap(g, cfg);
    EXPECT_EQ(result.assignment.size(), g.num_vertices());
    EXPECT_NEAR(result.codelength,
                dc::codelength_of_partition(fg, result.assignment), 1e-9);
    EXPECT_LT(result.codelength, result.singleton_codelength);
  }
}

TEST(DistInfomap, ExactHubMovesKeepsInvariants) {
  // The exact-hub-moves extension must keep every consistency property; on
  // hub-heavy graphs it should match or beat the paper's local-proposal
  // consensus.
  const auto gg = gen::barabasi_albert(1200, 2, 3);
  const auto g = dg::build_csr(gg.edges, gg.num_vertices);
  const auto fg = dc::make_flow_graph(g);
  auto base_cfg = config_for(4);
  auto exact_cfg = base_cfg;
  exact_cfg.exact_hub_moves = true;
  const auto base = dc::distributed_infomap(g, base_cfg);
  const auto exact = dc::distributed_infomap(g, exact_cfg);
  EXPECT_NEAR(exact.codelength,
              dc::codelength_of_partition(fg, exact.assignment), 1e-9);
  EXPECT_LT(exact.codelength, exact.singleton_codelength);
  // Not a strict guarantee per instance, but exactness should not be much
  // worse than the heuristic.
  EXPECT_LT(exact.codelength, base.codelength * 1.05);
}

TEST(DistInfomap, ExactHubMovesDeterministic) {
  const auto gg = gen::barabasi_albert(800, 2, 9);
  const auto g = dg::build_csr(gg.edges, gg.num_vertices);
  auto cfg = config_for(3);
  cfg.exact_hub_moves = true;
  const auto a = dc::distributed_infomap(g, cfg);
  const auto b = dc::distributed_infomap(g, cfg);
  EXPECT_EQ(a.assignment, b.assignment);
}

class DistRankSweep : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Ranks, DistRankSweep, ::testing::Values(1, 2, 3, 5, 8));

TEST_P(DistRankSweep, CodelengthConsistencyOnSbm) {
  const auto gg = gen::sbm(200, 4, 0.25, 0.01, 43);
  const auto g = dg::build_csr(gg.edges, gg.num_vertices);
  const auto fg = dc::make_flow_graph(g);
  const auto result = dc::distributed_infomap(g, config_for(GetParam()));
  EXPECT_NEAR(result.codelength,
              dc::codelength_of_partition(fg, result.assignment), 1e-9);
  EXPECT_LT(result.codelength, result.singleton_codelength);
}
