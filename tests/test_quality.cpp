#include <gtest/gtest.h>

#include <numeric>

#include "graph/builder.hpp"
#include "quality/metrics.hpp"
#include "util/check.hpp"
#include "util/random.hpp"

namespace dq = dinfomap::quality;
namespace dg = dinfomap::graph;

namespace {
dg::Partition shuffled_labels(const dg::Partition& p, std::uint64_t seed) {
  // Relabel communities with a random bijection — all metrics must be
  // invariant under it.
  dg::VertexId max_label = 0;
  for (auto c : p) max_label = std::max(max_label, c);
  std::vector<dg::VertexId> remap(max_label + 1);
  std::iota(remap.begin(), remap.end(), 1000);
  dinfomap::util::Xoshiro256 rng(seed);
  dinfomap::util::deterministic_shuffle(remap, rng);
  dg::Partition out(p.size());
  for (std::size_t i = 0; i < p.size(); ++i) out[i] = remap[p[i]];
  return out;
}
}  // namespace

TEST(Nmi, IdenticalPartitionsScoreOne) {
  const dg::Partition p = {0, 0, 1, 1, 2, 2};
  EXPECT_DOUBLE_EQ(dq::nmi(p, p), 1.0);
  EXPECT_DOUBLE_EQ(dq::nmi(p, shuffled_labels(p, 1)), 1.0);
}

TEST(Nmi, IndependentPartitionsScoreNearZero) {
  // a splits first/second half; b splits even/odd — independent for n=40.
  dg::Partition a(40), b(40);
  for (std::size_t i = 0; i < 40; ++i) {
    a[i] = i < 20 ? 0 : 1;
    b[i] = i % 2;
  }
  EXPECT_NEAR(dq::nmi(a, b), 0.0, 1e-9);
}

TEST(Nmi, SymmetricInArguments) {
  const dg::Partition a = {0, 0, 1, 1, 2, 2, 2, 0};
  const dg::Partition b = {0, 1, 1, 1, 2, 0, 2, 0};
  EXPECT_DOUBLE_EQ(dq::nmi(a, b), dq::nmi(b, a));
}

TEST(Nmi, TrivialSingleClusterPair) {
  const dg::Partition a = {5, 5, 5};
  EXPECT_DOUBLE_EQ(dq::nmi(a, a), 1.0);
}

TEST(Nmi, BoundedInUnitInterval) {
  dinfomap::util::Xoshiro256 rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    dg::Partition a(50), b(50);
    for (std::size_t i = 0; i < 50; ++i) {
      a[i] = static_cast<dg::VertexId>(rng.bounded(5));
      b[i] = static_cast<dg::VertexId>(rng.bounded(7));
    }
    const double v = dq::nmi(a, b);
    EXPECT_GE(v, -1e-12);
    EXPECT_LE(v, 1.0 + 1e-12);
  }
}

TEST(FMeasure, PerfectAndDegraded) {
  const dg::Partition a = {0, 0, 0, 1, 1, 1};
  EXPECT_DOUBLE_EQ(dq::f_measure(a, a), 1.0);
  const dg::Partition split = {0, 0, 2, 1, 1, 3};  // one vertex split off each
  const double f = dq::f_measure(a, split);
  EXPECT_GT(f, 0.3);
  EXPECT_LT(f, 1.0);
}

TEST(FMeasure, AllSingletonsVsBlocks) {
  dg::Partition singles(6), blocks = {0, 0, 0, 1, 1, 1};
  std::iota(singles.begin(), singles.end(), 0);
  // No co-clustered pairs in singles → precision undefined → 0 by convention.
  EXPECT_DOUBLE_EQ(dq::f_measure(singles, blocks), 0.0);
  EXPECT_DOUBLE_EQ(dq::f_measure(singles, singles), 1.0);
}

TEST(Jaccard, KnownSmallCase) {
  const dg::Partition a = {0, 0, 1, 1};
  const dg::Partition b = {0, 0, 0, 1};
  // Pairs together in a: {01,23}; in b: {01,02,12}. a11 = |{01}| = 1,
  // a10 = 1 (23), a01 = 2 (02,12) → JI = 1/4.
  EXPECT_DOUBLE_EQ(dq::jaccard_index(a, b), 0.25);
}

TEST(Jaccard, LabelPermutationInvariant) {
  const dg::Partition a = {0, 0, 1, 1, 2, 2, 2};
  const dg::Partition b = {0, 1, 1, 1, 2, 2, 0};
  EXPECT_DOUBLE_EQ(dq::jaccard_index(a, b),
                   dq::jaccard_index(shuffled_labels(a, 2), shuffled_labels(b, 3)));
}

TEST(PairCounts, SumsToAllPairs) {
  const dg::Partition a = {0, 0, 1, 1, 2};
  const dg::Partition b = {0, 1, 1, 0, 2};
  const auto pc = dq::pair_counts(dq::Contingency(a, b));
  // a11 + a10 + a01 + a00 = C(5,2); recover a00.
  const double total = 10;
  EXPECT_LE(pc.a11 + pc.a10 + pc.a01, total);
}

TEST(Contingency, RejectsSizeMismatch) {
  EXPECT_THROW(dq::Contingency({0, 1}, {0}), dinfomap::ContractViolation);
  EXPECT_THROW(dq::Contingency({}, {}), dinfomap::ContractViolation);
}

TEST(Modularity, RingOfCliquesGroundTruthIsHigh) {
  // Two triangles joined by one edge.
  const auto g = dg::build_csr(
      {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {2, 3}});
  const dg::Partition truth = {0, 0, 0, 1, 1, 1};
  const dg::Partition all_one = {0, 0, 0, 0, 0, 0};
  EXPECT_GT(dq::modularity(g, truth), 0.3);
  EXPECT_NEAR(dq::modularity(g, all_one), 0.0, 1e-12);
  EXPECT_GT(dq::modularity(g, truth), dq::modularity(g, all_one));
}

TEST(Modularity, SingletonsGiveNegative) {
  const auto g = dg::build_csr({{0, 1}, {1, 2}, {0, 2}});
  dg::Partition singles = {0, 1, 2};
  EXPECT_LT(dq::modularity(g, singles), 0.0);
}

TEST(Modularity, SelfLoopsCountAsInternal) {
  const auto g = dg::build_csr({{0, 0, 1.0}, {0, 1, 1.0}});
  const dg::Partition one = {0, 0};
  EXPECT_NEAR(dq::modularity(g, one), 0.0, 1e-12);  // single community
}
