#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/gen/generators.hpp"
#include "graph/transform.hpp"
#include "util/check.hpp"

namespace dg = dinfomap::graph;

namespace {
// Triangle {0,1,2}, edge {3,4}, isolated 5.
dg::Csr three_components() {
  return dg::build_csr({{0, 1}, {1, 2}, {0, 2}, {3, 4}}, 6);
}
}  // namespace

TEST(Components, LabelsByComponent) {
  const auto comp = dg::connected_components(three_components());
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[1], comp[2]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[3]);
  EXPECT_NE(comp[5], comp[0]);
  EXPECT_NE(comp[5], comp[3]);
}

TEST(Components, FullyConnectedIsOne) {
  const auto gg = dinfomap::graph::gen::ring_of_cliques(4, 3, 0);
  const auto g = dg::build_csr(gg.edges, gg.num_vertices);
  const auto comp = dg::connected_components(g);
  for (auto c : comp) EXPECT_EQ(c, 0u);
}

TEST(InducedSubgraph, KeepsEdgesAmongKept) {
  const auto g = three_components();
  const std::vector<dg::VertexId> keep = {0, 2, 3};
  const auto sub = dg::induced_subgraph(g, keep);
  EXPECT_EQ(sub.graph.num_vertices(), 3u);
  EXPECT_EQ(sub.graph.num_edges(), 1u);  // only {0,2} survives
  EXPECT_EQ(sub.old_ids, keep);
  EXPECT_TRUE(sub.graph.validate());
}

TEST(InducedSubgraph, PreservesSelfLoops) {
  const auto g = dg::build_csr({{0, 0, 2.5}, {0, 1, 1.0}});
  const auto sub = dg::induced_subgraph(g, std::vector<dg::VertexId>{0});
  EXPECT_DOUBLE_EQ(sub.graph.self_weight(0), 2.5);
  EXPECT_EQ(sub.graph.num_edges(), 0u);
}

TEST(InducedSubgraph, RejectsDuplicatesAndRange) {
  const auto g = three_components();
  EXPECT_THROW(dg::induced_subgraph(g, std::vector<dg::VertexId>{0, 0}),
               dinfomap::ContractViolation);
  EXPECT_THROW(dg::induced_subgraph(g, std::vector<dg::VertexId>{99}),
               dinfomap::ContractViolation);
}

TEST(LargestComponent, PicksTheTriangle) {
  const auto sub = dg::largest_component(three_components());
  EXPECT_EQ(sub.graph.num_vertices(), 3u);
  EXPECT_EQ(sub.graph.num_edges(), 3u);
  EXPECT_EQ(sub.old_ids, (std::vector<dg::VertexId>{0, 1, 2}));
}

TEST(RelabelDense, CompactsAscending) {
  dg::VertexId k = 0;
  const auto out = dg::relabel_dense({10, 7, 10, 42, 7}, &k);
  EXPECT_EQ(k, 3u);
  EXPECT_EQ(out, (dg::Partition{1, 0, 1, 2, 0}));
}

TEST(RelabelDense, AlreadyDenseIsIdentity) {
  const dg::Partition p = {0, 1, 2, 1, 0};
  EXPECT_EQ(dg::relabel_dense(p), p);
}

TEST(CommunitySizes, CountsPerDenseLabel) {
  const auto sizes = dg::community_sizes({5, 5, 9, 5, 9});
  EXPECT_EQ(sizes, (std::vector<dg::VertexId>{3, 2}));
}
