#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/csr.hpp"
#include "graph/stats.hpp"
#include "util/check.hpp"

namespace dg = dinfomap::graph;

namespace {
/// Triangle 0-1-2 plus pendant 3 attached to 0.
dg::Csr triangle_plus_pendant() {
  return dg::build_csr({{0, 1}, {1, 2}, {0, 2}, {0, 3}});
}
}  // namespace

TEST(Builder, BasicCsrShape) {
  const auto g = triangle_plus_pendant();
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.num_arcs(), 8u);
  EXPECT_EQ(g.degree(0), 3u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.degree(3), 1u);
  EXPECT_TRUE(g.validate());
}

TEST(Builder, AdjacencySortedAndSymmetric) {
  const auto g = triangle_plus_pendant();
  const auto nb0 = g.neighbors(0);
  ASSERT_EQ(nb0.size(), 3u);
  EXPECT_EQ(nb0[0].target, 1u);
  EXPECT_EQ(nb0[1].target, 2u);
  EXPECT_EQ(nb0[2].target, 3u);
}

TEST(Builder, DuplicateEdgesCombineWeights) {
  const auto g = dg::build_csr({{0, 1, 1.0}, {1, 0, 2.0}, {0, 1, 0.5}});
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_DOUBLE_EQ(g.neighbors(0)[0].weight, 3.5);
  EXPECT_DOUBLE_EQ(g.weighted_degree(0), 3.5);
  EXPECT_TRUE(g.validate());
}

TEST(Builder, DuplicateKeepFirstWhenCombineOff) {
  dg::BuildOptions opt;
  opt.combine_duplicates = false;
  const auto g = dg::build_csr({{0, 1, 1.0}, {1, 0, 2.0}}, 0, opt);
  EXPECT_DOUBLE_EQ(g.neighbors(0)[0].weight, 1.0);
}

TEST(Builder, SelfLoopsGoToSelfWeight) {
  const auto g = dg::build_csr({{0, 0, 2.0}, {0, 1, 1.0}});
  EXPECT_DOUBLE_EQ(g.self_weight(0), 2.0);
  EXPECT_EQ(g.degree(0), 1u);  // self-loop not in adjacency
  EXPECT_DOUBLE_EQ(g.total_link_weight(), 1.0);
  EXPECT_DOUBLE_EQ(g.total_weight(), 3.0);
}

TEST(Builder, SelfLoopsDroppedOnRequest) {
  dg::BuildOptions opt;
  opt.drop_self_loops = true;
  const auto g = dg::build_csr({{0, 0, 2.0}, {0, 1, 1.0}}, 0, opt);
  EXPECT_DOUBLE_EQ(g.self_weight(0), 0.0);
  EXPECT_DOUBLE_EQ(g.total_weight(), 1.0);
}

TEST(Builder, ExplicitVertexCountKeepsIsolated) {
  const auto g = dg::build_csr({{0, 1}}, 5);
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.degree(4), 0u);
}

TEST(Builder, RejectsOutOfRangeEndpoint) {
  EXPECT_THROW(dg::build_csr({{0, 7}}, 3), dinfomap::ContractViolation);
}

TEST(Builder, RejectsNonPositiveWeight) {
  EXPECT_THROW(dg::build_csr({{0, 1, 0.0}}), dinfomap::ContractViolation);
  EXPECT_THROW(dg::build_csr({{0, 1, -1.0}}), dinfomap::ContractViolation);
}

TEST(Csr, WeightedDegreeAndTotals) {
  const auto g = dg::build_csr({{0, 1, 2.0}, {1, 2, 3.0}});
  EXPECT_DOUBLE_EQ(g.weighted_degree(1), 5.0);
  EXPECT_DOUBLE_EQ(g.total_link_weight(), 5.0);
  EXPECT_DOUBLE_EQ(g.total_weight(), 5.0);
}

TEST(Csr, EmptyGraphRejectedByCtor) {
  EXPECT_THROW(dg::Csr({}, {}, {}), dinfomap::ContractViolation);
}

TEST(Stats, DegreeStatsFindHubs) {
  // Star: vertex 0 connects to 1..9.
  dg::EdgeList edges;
  for (dg::VertexId v = 1; v < 10; ++v) edges.push_back({0, v});
  const auto g = dg::build_csr(edges);
  const auto s = dg::degree_stats(g, 4);
  EXPECT_EQ(s.max_degree, 9u);
  EXPECT_EQ(s.hubs_above, 1u);
  EXPECT_DOUBLE_EQ(s.hub_arc_fraction, 0.5);  // 9 of 18 arcs touch the hub
  EXPECT_NEAR(s.mean_degree, 1.8, 1e-12);
}

TEST(Stats, DegreeHistogramCapsAtLastBucket) {
  dg::EdgeList edges;
  for (dg::VertexId v = 1; v < 10; ++v) edges.push_back({0, v});
  const auto g = dg::build_csr(edges);
  const auto hist = dg::degree_histogram(g, 4);
  ASSERT_EQ(hist.size(), 5u);
  EXPECT_EQ(hist[1], 9u);  // nine leaves
  EXPECT_EQ(hist[4], 1u);  // hub capped into bucket 4
}
