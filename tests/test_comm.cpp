// Tests of the MPI-like runtime: point-to-point semantics, every collective,
// counters, and failure behaviour — parameterized across rank counts.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>

#include "comm/runtime.hpp"

namespace dc = dinfomap::comm;

namespace {
class CollectivesAtP : public ::testing::TestWithParam<int> {};
}  // namespace

TEST(Runtime, SingleRankRuns) {
  std::atomic<int> calls{0};
  dc::Runtime::run(1, [&](dc::Comm& comm) {
    EXPECT_EQ(comm.rank(), 0);
    EXPECT_EQ(comm.size(), 1);
    ++calls;
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(Runtime, EveryRankSeesDistinctRank) {
  std::atomic<std::uint64_t> mask{0};
  dc::Runtime::run(8, [&](dc::Comm& comm) {
    mask.fetch_or(std::uint64_t{1} << comm.rank());
  });
  EXPECT_EQ(mask.load(), 0xffu);
}

TEST(Runtime, ZeroRanksRejected) {
  EXPECT_THROW(dc::Runtime::run(0, [](dc::Comm&) {}),
               dinfomap::ContractViolation);
}

TEST(Runtime, ExceptionPropagatesAndUnblocksPeers) {
  EXPECT_THROW(dc::Runtime::run(4,
                                [&](dc::Comm& comm) {
                                  if (comm.rank() == 2)
                                    throw std::runtime_error("rank 2 died");
                                  // Peers block on a message that never comes;
                                  // the abort must wake them.
                                  (void)comm.recv_bytes(2, 7);
                                }),
               std::runtime_error);
}

TEST(PointToPoint, RoundTripTypedVector) {
  dc::Runtime::run(2, [](dc::Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<int> payload{1, 2, 3, 4};
      comm.send(1, 5, payload);
    } else {
      const auto got = comm.recv<int>(0, 5);
      EXPECT_EQ(got, (std::vector<int>{1, 2, 3, 4}));
    }
  });
}

TEST(PointToPoint, TagMatchingReordersDelivery) {
  dc::Runtime::run(2, [](dc::Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value<int>(1, /*tag=*/10, 100);
      comm.send_value<int>(1, /*tag=*/20, 200);
    } else {
      // Receive in reverse tag order: matching must skip the queued tag-10
      // message.
      EXPECT_EQ(comm.recv_value<int>(0, 20), 200);
      EXPECT_EQ(comm.recv_value<int>(0, 10), 100);
    }
  });
}

TEST(PointToPoint, AnySourceMatches) {
  dc::Runtime::run(3, [](dc::Comm& comm) {
    if (comm.rank() != 0) {
      comm.send_value<int>(0, 1, comm.rank());
    } else {
      int sum = 0;
      sum += comm.recv_value<int>(dc::kAnySource, 1);
      sum += comm.recv_value<int>(dc::kAnySource, 1);
      EXPECT_EQ(sum, 3);
    }
  });
}

TEST(PointToPoint, SelfSendWorksAndIsFree) {
  dc::Runtime::run(1, [](dc::Comm& comm) {
    comm.send_value<double>(0, 3, 2.5);
    EXPECT_DOUBLE_EQ(comm.recv_value<double>(0, 3), 2.5);
    EXPECT_EQ(comm.counters().p2p_messages, 0u);  // local copy, not traffic
    EXPECT_EQ(comm.counters().p2p_bytes, 0u);
  });
}

TEST(PointToPoint, EmptyPayload) {
  dc::Runtime::run(2, [](dc::Comm& comm) {
    if (comm.rank() == 0)
      comm.send_bytes(1, 9, {});
    else
      EXPECT_TRUE(comm.recv_bytes(0, 9).empty());
  });
}

TEST(PointToPoint, ReservedTagRejected) {
  dc::Runtime::run(1, [](dc::Comm& comm) {
    EXPECT_THROW(comm.send_value<int>(0, dc::kCollectiveTagBase, 1),
                 dinfomap::ContractViolation);
  });
}

TEST(PointToPoint, CountersTrackTraffic) {
  dc::Runtime::run(2, [](dc::Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 1, std::vector<double>(10, 1.0));
      EXPECT_EQ(comm.counters().p2p_messages, 1u);
      EXPECT_EQ(comm.counters().p2p_bytes, 80u);
    } else {
      (void)comm.recv<double>(0, 1);
      EXPECT_EQ(comm.counters().p2p_messages, 0u);  // receiving is free
    }
  });
}

INSTANTIATE_TEST_SUITE_P(RankSweep, CollectivesAtP,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 16));

TEST_P(CollectivesAtP, BarrierCompletes) {
  dc::Runtime::run(GetParam(), [](dc::Comm& comm) {
    for (int i = 0; i < 5; ++i) comm.barrier();
  });
}

TEST_P(CollectivesAtP, BroadcastFromEveryRoot) {
  const int p = GetParam();
  dc::Runtime::run(p, [p](dc::Comm& comm) {
    for (int root = 0; root < p; ++root) {
      std::vector<int> data;
      if (comm.rank() == root) data = {root, root + 1, root + 2};
      comm.bcast(root, data);
      EXPECT_EQ(data, (std::vector<int>{root, root + 1, root + 2}));
    }
  });
}

TEST_P(CollectivesAtP, BcastValue) {
  dc::Runtime::run(GetParam(), [](dc::Comm& comm) {
    const double got = comm.bcast_value(0, comm.rank() == 0 ? 3.25 : -1.0);
    EXPECT_DOUBLE_EQ(got, 3.25);
  });
}

TEST_P(CollectivesAtP, AllgatherValueOrdersByRank) {
  const int p = GetParam();
  dc::Runtime::run(p, [p](dc::Comm& comm) {
    const auto all = comm.allgather_value(10 * comm.rank());
    ASSERT_EQ(static_cast<int>(all.size()), p);
    for (int r = 0; r < p; ++r) EXPECT_EQ(all[r], 10 * r);
  });
}

TEST_P(CollectivesAtP, AllgathervVariableSizes) {
  const int p = GetParam();
  dc::Runtime::run(p, [p](dc::Comm& comm) {
    std::vector<int> mine(comm.rank(), comm.rank());  // rank r sends r copies
    const auto all = comm.allgatherv(mine);
    ASSERT_EQ(static_cast<int>(all.size()), p);
    for (int r = 0; r < p; ++r) {
      ASSERT_EQ(static_cast<int>(all[r].size()), r);
      for (int x : all[r]) EXPECT_EQ(x, r);
    }
  });
}

TEST_P(CollectivesAtP, AllreduceSumMinMax) {
  const int p = GetParam();
  dc::Runtime::run(p, [p](dc::Comm& comm) {
    EXPECT_EQ(comm.allreduce(comm.rank() + 1, dc::ReduceOp::kSum),
              p * (p + 1) / 2);
    EXPECT_EQ(comm.allreduce(comm.rank(), dc::ReduceOp::kMin), 0);
    EXPECT_EQ(comm.allreduce(comm.rank(), dc::ReduceOp::kMax), p - 1);
  });
}

TEST_P(CollectivesAtP, AllreduceLogicalOps) {
  const int p = GetParam();
  dc::Runtime::run(p, [p](dc::Comm& comm) {
    const int mine_and = comm.rank() == 0 ? 0 : 1;
    EXPECT_EQ(comm.allreduce(mine_and, dc::ReduceOp::kLogicalAnd), p == 1 ? 0 : 0);
    const int mine_or = comm.rank() == p - 1 ? 1 : 0;
    EXPECT_EQ(comm.allreduce(mine_or, dc::ReduceOp::kLogicalOr), 1);
  });
}

TEST_P(CollectivesAtP, AllreduceVectorElementwise) {
  const int p = GetParam();
  dc::Runtime::run(p, [p](dc::Comm& comm) {
    const std::vector<double> mine = {1.0, static_cast<double>(comm.rank())};
    const auto total = comm.allreduce(mine, dc::ReduceOp::kSum);
    EXPECT_DOUBLE_EQ(total[0], p);
    EXPECT_DOUBLE_EQ(total[1], p * (p - 1) / 2.0);
  });
}

TEST_P(CollectivesAtP, AllreduceFloatIsIdenticalOnAllRanks) {
  const int p = GetParam();
  std::vector<double> results(p);
  dc::Runtime::run(p, [&](dc::Comm& comm) {
    // Awkward magnitudes to expose order-dependent rounding.
    const double mine = comm.rank() % 2 == 0 ? 1e16 : 1.0;
    results[comm.rank()] = comm.allreduce(mine, dc::ReduceOp::kSum);
  });
  for (int r = 1; r < p; ++r) EXPECT_EQ(results[0], results[r]);
}

TEST_P(CollectivesAtP, AlltoallvPersonalizedExchange) {
  const int p = GetParam();
  dc::Runtime::run(p, [p](dc::Comm& comm) {
    std::vector<std::vector<int>> out(p);
    for (int dest = 0; dest < p; ++dest)
      out[dest] = {comm.rank() * 100 + dest};
    const auto in = comm.alltoallv(out);
    ASSERT_EQ(static_cast<int>(in.size()), p);
    for (int src = 0; src < p; ++src) {
      ASSERT_EQ(in[src].size(), 1u);
      EXPECT_EQ(in[src][0], src * 100 + comm.rank());
    }
  });
}

TEST_P(CollectivesAtP, AlltoallvEmptyLanes) {
  const int p = GetParam();
  dc::Runtime::run(p, [p](dc::Comm& comm) {
    std::vector<std::vector<int>> out(p);  // everything empty
    const auto in = comm.alltoallv(out);
    for (const auto& lane : in) EXPECT_TRUE(lane.empty());
  });
}

TEST_P(CollectivesAtP, GathervCollectsAtRoot) {
  const int p = GetParam();
  dc::Runtime::run(p, [p](dc::Comm& comm) {
    const std::vector<std::byte> mine(static_cast<std::size_t>(comm.rank()),
                                      std::byte{0xAB});
    const auto got = comm.gatherv_bytes(0, mine);
    if (comm.rank() == 0) {
      ASSERT_EQ(static_cast<int>(got.size()), p);
      for (int r = 0; r < p; ++r)
        EXPECT_EQ(static_cast<int>(got[r].size()), r);
    } else {
      EXPECT_TRUE(got.empty());
    }
  });
}

TEST_P(CollectivesAtP, MixedSequenceStaysConsistent) {
  // Interleave collectives and p2p to exercise tag sequencing.
  const int p = GetParam();
  dc::Runtime::run(p, [p](dc::Comm& comm) {
    for (int iter = 0; iter < 10; ++iter) {
      const int sum = comm.allreduce(1, dc::ReduceOp::kSum);
      EXPECT_EQ(sum, p);
      if (p > 1) {
        const int partner = (comm.rank() + 1) % p;
        comm.send_value<int>(partner, 3, iter);
        const int got = comm.recv_value<int>((comm.rank() + p - 1) % p, 3);
        EXPECT_EQ(got, iter);
      }
      comm.barrier();
    }
  });
}

TEST_P(CollectivesAtP, ScattervDeliversSlices) {
  const int p = GetParam();
  dc::Runtime::run(p, [p](dc::Comm& comm) {
    std::vector<std::vector<int>> slices;
    if (comm.rank() == 0) {
      slices.resize(p);
      for (int r = 0; r < p; ++r) slices[r].assign(r + 1, r * 7);
    }
    const auto mine = comm.scatterv(0, slices);
    ASSERT_EQ(static_cast<int>(mine.size()), comm.rank() + 1);
    for (int x : mine) EXPECT_EQ(x, comm.rank() * 7);
  });
}

TEST_P(CollectivesAtP, TypedGathervAtRoot) {
  const int p = GetParam();
  dc::Runtime::run(p, [p](dc::Comm& comm) {
    const std::vector<double> mine(comm.rank(), 0.5);
    const auto got = comm.gatherv(0, mine);
    if (comm.rank() == 0) {
      ASSERT_EQ(static_cast<int>(got.size()), p);
      for (int r = 0; r < p; ++r)
        EXPECT_EQ(static_cast<int>(got[r].size()), r);
    } else {
      EXPECT_TRUE(got.empty());
    }
  });
}

TEST_P(CollectivesAtP, ReduceValueAtRoot) {
  const int p = GetParam();
  dc::Runtime::run(p, [p](dc::Comm& comm) {
    const int total = comm.reduce_value(0, comm.rank() + 1, dc::ReduceOp::kSum);
    if (comm.rank() == 0)
      EXPECT_EQ(total, p * (p + 1) / 2);
    else
      EXPECT_EQ(total, 0);  // non-roots get T{}
  });
}

TEST(PendingRecv, ReadyAndWait) {
  dc::Runtime::run(2, [](dc::Comm& comm) {
    if (comm.rank() == 0) {
      auto req = comm.irecv(1, 5);
      // Signal readiness through another tag, then the payload arrives.
      comm.send_value<int>(1, 1, 0);
      const auto data = req.wait_as<int>();
      EXPECT_EQ(data, (std::vector<int>{42}));
    } else {
      (void)comm.recv_value<int>(0, 1);
      comm.send_value<int>(0, 5, 42);
    }
  });
}

TEST(PendingRecv, ReadyReflectsQueueState) {
  dc::Runtime::run(2, [](dc::Comm& comm) {
    if (comm.rank() == 0) {
      auto req = comm.irecv(1, 9);
      EXPECT_FALSE(req.ready());  // nothing sent yet
      comm.barrier();             // rank 1 sends before this completes
      comm.barrier();
      EXPECT_TRUE(req.ready());
      EXPECT_EQ(req.wait_as<double>().front(), 2.5);
    } else {
      comm.barrier();
      comm.send_value<double>(0, 9, 2.5);
      comm.barrier();
    }
  });
}

TEST(PendingRecv, DoubleWaitRejected) {
  dc::Runtime::run(1, [](dc::Comm& comm) {
    comm.send_value<int>(0, 3, 1);
    auto req = comm.irecv(0, 3);
    (void)req.wait();
    EXPECT_THROW((void)req.wait(), dinfomap::ContractViolation);
  });
}

TEST(Counters, CollectiveTrafficCounted) {
  dc::Runtime::run(4, [](dc::Comm& comm) {
    comm.barrier();
    EXPECT_GT(comm.counters().collective_messages, 0u);
    EXPECT_EQ(comm.counters().collective_calls, 1u);
  });
}

TEST(Counters, JobReportAggregates) {
  const auto report = dc::Runtime::run(3, [](dc::Comm& comm) {
    if (comm.rank() == 0) comm.send(1, 1, std::vector<int>{1, 2, 3});
    if (comm.rank() == 1) (void)comm.recv<int>(0, 1);
    comm.barrier();
  });
  ASSERT_EQ(report.counters.size(), 3u);
  EXPECT_EQ(report.counters[0].p2p_messages, 1u);
  EXPECT_EQ(report.counters[0].p2p_bytes, 12u);
  EXPECT_EQ(report.counters[1].p2p_messages, 0u);
}
