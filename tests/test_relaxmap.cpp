#include <gtest/gtest.h>

#include "core/flowgraph.hpp"
#include "core/relaxmap.hpp"
#include "core/seq_infomap.hpp"
#include "graph/builder.hpp"
#include "graph/gen/generators.hpp"
#include "quality/metrics.hpp"
#include "util/check.hpp"

namespace dc = dinfomap::core;
namespace dg = dinfomap::graph;
namespace gen = dinfomap::graph::gen;

TEST(RelaxMap, SingleThreadRecoversRingOfCliques) {
  const auto gg = gen::ring_of_cliques(8, 5, 0);
  const auto g = dg::build_csr(gg.edges, gg.num_vertices);
  dc::RelaxMapConfig cfg;
  cfg.num_threads = 1;
  const auto result = dc::relaxmap(g, cfg);
  EXPECT_DOUBLE_EQ(
      dinfomap::quality::nmi(result.assignment, *gg.ground_truth), 1.0);
}

TEST(RelaxMap, MultiThreadQualityHolds) {
  const auto gg = gen::ring_of_cliques(10, 6, 0);
  const auto g = dg::build_csr(gg.edges, gg.num_vertices);
  for (int t : {2, 4}) {
    dc::RelaxMapConfig cfg;
    cfg.num_threads = t;
    const auto result = dc::relaxmap(g, cfg);
    EXPECT_GT(dinfomap::quality::nmi(result.assignment, *gg.ground_truth), 0.95)
        << "threads=" << t;
  }
}

TEST(RelaxMap, CodelengthIsExactRescoring) {
  const auto gg = gen::lfr_lite({}, 13);
  const auto g = dg::build_csr(gg.edges, gg.num_vertices);
  dc::RelaxMapConfig cfg;
  cfg.num_threads = 3;
  const auto result = dc::relaxmap(g, cfg);
  const auto fg = dc::make_flow_graph(g);
  EXPECT_NEAR(result.codelength,
              dc::codelength_of_partition(fg, result.assignment), 1e-12);
  EXPECT_LT(result.codelength, result.singleton_codelength);
}

TEST(RelaxMap, CloseToSequentialQuality) {
  const auto gg = gen::lfr_lite({}, 21);
  const auto g = dg::build_csr(gg.edges, gg.num_vertices);
  const auto seq = dc::sequential_infomap(g);
  dc::RelaxMapConfig cfg;
  cfg.num_threads = 4;
  const auto result = dc::relaxmap(g, cfg);
  // RelaxMap's pitch (Bae et al. 2013): parallel relaxation preserves
  // near-sequential quality.
  EXPECT_LT(result.codelength, seq.codelength * 1.05);
}

TEST(RelaxMap, MoreThreadsThanVerticesIsFine) {
  const auto g = dg::build_csr({{0, 1}, {1, 2}, {0, 2}});
  dc::RelaxMapConfig cfg;
  cfg.num_threads = 16;
  const auto result = dc::relaxmap(g, cfg);
  EXPECT_EQ(result.num_modules(), 1u);
}

TEST(RelaxMap, RejectsZeroThreads) {
  const auto g = dg::build_csr({{0, 1}});
  dc::RelaxMapConfig cfg;
  cfg.num_threads = 0;
  EXPECT_THROW(dc::relaxmap(g, cfg), dinfomap::ContractViolation);
}
