#include <gtest/gtest.h>

#include <set>

#include "core/hierarchy.hpp"
#include "core/seq_infomap.hpp"
#include "graph/builder.hpp"
#include "graph/gen/generators.hpp"
#include "util/check.hpp"
#include "util/random.hpp"

namespace dc = dinfomap::core;
namespace dg = dinfomap::graph;
namespace gen = dinfomap::graph::gen;

namespace {
dc::FlowGraph two_triangles_flow() {
  return dc::make_flow_graph(dg::build_csr(
      {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {2, 3}}));
}

/// Nested structure: 8 groups, each an SBM of 8 dense blocks of 8 vertices.
/// Hierarchy pays when there are *many* modules (the flat index codebook is
/// expensive) with locality among them — the regime of Rosvall &
/// Bergstrom's multilevel paper.
dg::Csr nested_graph(std::uint64_t seed) {
  dinfomap::util::Xoshiro256 rng(seed);
  const dg::VertexId groups = 8, blocks = 8, bs = 8;
  const dg::VertexId n = groups * blocks * bs;
  dg::EdgeList edges;
  auto group_of = [&](dg::VertexId v) { return v / (blocks * bs); };
  auto block_of = [&](dg::VertexId v) { return v / bs; };
  for (dg::VertexId u = 0; u < n; ++u) {
    for (dg::VertexId v = u + 1; v < n; ++v) {
      double p = 0.002;
      if (block_of(u) == block_of(v)) p = 0.9;
      else if (group_of(u) == group_of(v)) p = 0.10;
      if (rng.uniform() < p) edges.push_back({u, v, 1.0});
    }
  }
  return dg::build_csr(edges, n);
}
}  // namespace

TEST(Hierarchy, TwoLevelCodelengthMatchesEq3) {
  // The generalized multilevel formula must reduce exactly to Eq. 3 for a
  // one-deep tree — on several graphs and partitions.
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const auto gg = gen::sbm(150, 5, 0.25, 0.02, seed);
    const auto g = dg::build_csr(gg.edges, gg.num_vertices);
    const auto fg = dc::make_flow_graph(g);
    const auto h = dc::Hierarchy::two_level(fg, *gg.ground_truth);
    EXPECT_NEAR(h.codelength(fg),
                dc::codelength_of_partition(fg, *gg.ground_truth), 1e-10);
    EXPECT_TRUE(h.validate(fg));
    EXPECT_EQ(h.depth(), 1);
  }
}

TEST(Hierarchy, SplitNodeRecomputesExits) {
  const auto fg = two_triangles_flow();
  // Start with everything in one module.
  auto h = dc::Hierarchy::two_level(fg, dg::Partition(6, 0));
  ASSERT_EQ(h.num_leaf_modules(), 1);
  const double flat_l = h.codelength(fg);

  // Split into the two triangles: module node is id 1 (root's only child).
  h.split_node(fg, 1, {0, 0, 0, 1, 1, 1});
  EXPECT_TRUE(h.validate(fg));
  EXPECT_EQ(h.num_leaf_modules(), 2);
  EXPECT_EQ(h.depth(), 2);
  // Each triangle submodule exits over the bridge: flow 1/14.
  for (const auto& node : h.nodes()) {
    if (node.leaves.size() == 3) {
      EXPECT_NEAR(node.exit, 1.0 / 14.0, 1e-12);
    }
  }
  // The nested tree costs more than flat two-module here (an intermediate
  // codebook with one module is pure overhead) but stays finite and valid.
  EXPECT_GT(h.codelength(fg), 0.0);
  (void)flat_l;
}

TEST(Hierarchy, LeafAssignmentCoversAll) {
  const auto gg = gen::ring_of_cliques(5, 4, 0);
  const auto g = dg::build_csr(gg.edges, gg.num_vertices);
  const auto fg = dc::make_flow_graph(g);
  const auto h = dc::Hierarchy::two_level(fg, *gg.ground_truth);
  const auto leaf = h.leaf_assignment(g.num_vertices());
  EXPECT_EQ(leaf.size(), g.num_vertices());
  std::set<dg::VertexId> labels(leaf.begin(), leaf.end());
  EXPECT_EQ(labels.size(), 5u);
}

TEST(Hierarchy, VertexPathsUniqueAndPrefixed) {
  const auto fg = two_triangles_flow();
  auto h = dc::Hierarchy::two_level(fg, dg::Partition(6, 0));
  h.split_node(fg, 1, {0, 0, 0, 1, 1, 1});
  const auto paths = h.vertex_paths(6);
  std::set<std::string> unique(paths.begin(), paths.end());
  EXPECT_EQ(unique.size(), 6u);
  // Depth-2 hierarchy → three components "top:sub:leaf".
  for (const auto& p : paths)
    EXPECT_EQ(std::count(p.begin(), p.end(), ':'), 2) << p;
}

TEST(Hierarchy, SplitRejectsBadArguments) {
  const auto fg = two_triangles_flow();
  auto h = dc::Hierarchy::two_level(fg, dg::Partition(6, 0));
  EXPECT_THROW(h.split_node(fg, 0, {}), dinfomap::ContractViolation);   // root
  EXPECT_THROW(h.split_node(fg, 1, {0, 1}), dinfomap::ContractViolation);  // size
  h.split_node(fg, 1, {0, 0, 0, 1, 1, 1});
  EXPECT_THROW(h.split_node(fg, 1, dg::Partition(0)),
               dinfomap::ContractViolation);  // already internal
}

TEST(HierInfomap, NeverWorseThanTwoLevel) {
  for (std::uint64_t seed : {11u, 12u}) {
    const auto gg = gen::lfr_lite({}, seed);
    const auto g = dg::build_csr(gg.edges, gg.num_vertices);
    const auto result = dc::hierarchical_infomap(g);
    EXPECT_LE(result.codelength, result.two_level_codelength + 1e-9);
    EXPECT_EQ(result.leaf_assignment.size(), g.num_vertices());
  }
}

TEST(HierInfomap, FindsNestedStructure) {
  const auto g = nested_graph(5);
  dc::HierInfomapConfig cfg;
  const auto result = dc::hierarchical_infomap(g, cfg);
  const auto fg = dc::make_flow_graph(g);
  EXPECT_TRUE(result.hierarchy.validate(fg));
  // The nested SBM has 9 dense blocks inside 3 groups; the hierarchy must
  // reach below the top level and resolve more leaf modules than top ones.
  EXPECT_GE(result.hierarchy.depth(), 2);
  EXPECT_GT(result.hierarchy.num_leaf_modules(),
            static_cast<int>(result.hierarchy.nodes()[0].children.size()) - 1);
  EXPECT_LT(result.codelength, result.two_level_codelength);
}

TEST(HierInfomap, GroupTopInsertsSuperLevel) {
  // Hand-driven upward grouping on two triangle-pairs:
  // modules {t1,t2,t3,t4} grouped as {t1,t2} and {t3,t4}.
  const auto g = dg::build_csr({// two triangles tightly bridged
                                {0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5},
                                {2, 3}, {1, 4},
                                // second pair, far away
                                {6, 7}, {7, 8}, {6, 8}, {9, 10}, {10, 11}, {9, 11},
                                {8, 9}, {7, 10},
                                // single weak link between the pairs
                                {5, 6, 0.1}});
  const auto fg = dc::make_flow_graph(g);
  const dg::Partition triangles = {0, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3};
  auto h = dc::Hierarchy::two_level(fg, triangles);
  const double flat_l = h.codelength(fg);
  h.group_top(fg, {0, 0, 1, 1});
  EXPECT_TRUE(h.validate(fg));
  EXPECT_EQ(h.depth(), 2);
  EXPECT_EQ(h.num_leaf_modules(), 4);
  // Grouping the tightly-bridged pairs must compress the walk.
  EXPECT_LT(h.codelength(fg), flat_l);
}

TEST(HierInfomap, DeterministicRepeat) {
  const auto g = nested_graph(9);
  const auto a = dc::hierarchical_infomap(g);
  const auto b = dc::hierarchical_infomap(g);
  EXPECT_EQ(a.leaf_assignment, b.leaf_assignment);
  EXPECT_DOUBLE_EQ(a.codelength, b.codelength);
}
