// Full registry validation, including the medium/large stand-ins the light
// io tests skip: every dataset builds a valid CSR with the degree profile
// its family promises.
#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/stats.hpp"
#include "io/datasets.hpp"

namespace dg = dinfomap::graph;
namespace dio = dinfomap::io;

namespace {
class EveryDataset : public ::testing::TestWithParam<const char*> {};
}  // namespace

INSTANTIATE_TEST_SUITE_P(Registry, EveryDataset,
                         ::testing::Values("friendster", "uk2007", "uk2005",
                                           "webbase2001", "ndweb",
                                           "livejournal", "youtube", "dblp",
                                           "amazon"));

TEST_P(EveryDataset, BuildsValidGraphWithExpectedProfile) {
  const auto& spec = dio::dataset_spec(GetParam());
  const auto gen = dio::load_dataset(GetParam());
  EXPECT_EQ(gen.ground_truth.has_value(), spec.has_ground_truth);

  const auto g = dg::build_csr(gen.edges, gen.num_vertices);
  EXPECT_GT(g.num_edges(), 0u);
  EXPECT_EQ(g.num_vertices(), gen.num_vertices);

  const auto stats = dg::degree_stats(g, 0);
  // All stand-ins are connected-ish community/web graphs, not near-empty.
  EXPECT_GT(stats.mean_degree, 2.0) << spec.paper_name;

  // The web-crawl stand-ins must carry a strong hub tail (the property the
  // delegate partitioning targets); the LFR stand-ins a bounded one.
  const bool web_family = spec.name == "uk2007" || spec.name == "uk2005" ||
                          spec.name == "webbase2001" || spec.name == "ndweb";
  if (web_family) {
    EXPECT_GT(static_cast<double>(stats.max_degree), 20.0 * stats.mean_degree)
        << spec.paper_name;
  }
  // Cheap structural audit on the smaller graphs only (validate is O(E log E)).
  if (g.num_edges() < 100000) {
    EXPECT_TRUE(g.validate());
  }
}

TEST(DatasetsFull, SizesAreTractableAndOrdered) {
  // Guard the experiment runtime budget: small < medium < large stand-ins.
  const auto small = dg::build_csr(dio::load_dataset("amazon").edges);
  const auto medium = dg::build_csr(dio::load_dataset("youtube").edges);
  const auto large = dg::build_csr(dio::load_dataset("uk2007").edges);
  EXPECT_LT(small.num_edges(), medium.num_edges());
  EXPECT_LT(medium.num_edges(), large.num_edges());
  EXPECT_LT(large.num_edges(), 2'000'000u);  // one-core budget ceiling
}
