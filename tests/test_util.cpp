#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <thread>

#include "util/check.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace du = dinfomap::util;

TEST(Check, RequireThrowsContractViolation) {
  EXPECT_THROW(DINFOMAP_REQUIRE(1 == 2), dinfomap::ContractViolation);
  EXPECT_NO_THROW(DINFOMAP_REQUIRE(1 == 1));
}

TEST(Check, RequireMsgCarriesMessage) {
  try {
    DINFOMAP_REQUIRE_MSG(false, "ctx " << 42);
    FAIL() << "should have thrown";
  } catch (const dinfomap::ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("ctx 42"), std::string::npos);
  }
}

TEST(Random, SplitMix64KnownSequenceIsDeterministic) {
  du::SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Random, XoshiroDifferentSeedsDiffer) {
  du::Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 4);
}

TEST(Random, BoundedStaysInRange) {
  du::Xoshiro256 rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.bounded(bound), bound);
  }
}

TEST(Random, BoundedZeroReturnsZero) {
  du::Xoshiro256 rng(7);
  EXPECT_EQ(rng.bounded(0), 0u);
}

TEST(Random, UniformInUnitInterval) {
  du::Xoshiro256 rng(99);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Random, BoundedIsRoughlyUniform) {
  du::Xoshiro256 rng(5);
  std::vector<int> hist(10, 0);
  for (int i = 0; i < 100000; ++i) ++hist[rng.bounded(10)];
  for (int count : hist) EXPECT_NEAR(count, 10000, 600);
}

TEST(Random, DeriveSeedSeparatesStreams) {
  EXPECT_NE(du::derive_seed(1, 0), du::derive_seed(1, 1));
  EXPECT_NE(du::derive_seed(1, 0), du::derive_seed(2, 0));
  EXPECT_EQ(du::derive_seed(1, 0), du::derive_seed(1, 0));
}

TEST(Random, ShuffleIsPermutationAndSeedStable) {
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  du::Xoshiro256 rng1(3), rng2(3);
  auto a = v, b = v;
  du::deterministic_shuffle(a, rng1);
  du::deterministic_shuffle(b, rng2);
  EXPECT_EQ(a, b);
  std::sort(b.begin(), b.end());
  EXPECT_EQ(b, v);
  EXPECT_NE(a, v);  // astronomically unlikely to be identity
}

TEST(Stats, SummaryBasics) {
  const auto s = du::summarize({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.max, 4);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_DOUBLE_EQ(s.imbalance, 4 / 2.5);
  EXPECT_EQ(s.count, 4u);
}

TEST(Stats, SummaryEmptyAndSingle) {
  EXPECT_EQ(du::summarize({}).count, 0u);
  const auto s = du::summarize({5});
  EXPECT_DOUBLE_EQ(s.median, 5);
  EXPECT_DOUBLE_EQ(s.stddev, 0);
  EXPECT_DOUBLE_EQ(s.imbalance, 1.0);
}

TEST(Stats, SummarizeCountsMatchesDoubles) {
  const auto a = du::summarize_counts({10, 20, 30});
  const auto b = du::summarize({10.0, 20.0, 30.0});
  EXPECT_DOUBLE_EQ(a.mean, b.mean);
  EXPECT_DOUBLE_EQ(a.max, b.max);
}

TEST(Stats, LogHistogramBuckets) {
  du::LogHistogram h;
  h.add(0);      // zero bucket
  h.add(0.5);    // zero bucket
  h.add(5);      // [1,10)
  h.add(50);     // [10,100)
  h.add(500);    // [100,1000)
  h.add(999);    // [100,1000)
  const auto& b = h.buckets();
  ASSERT_GE(b.size(), 4u);
  EXPECT_EQ(b[1], 1u);
  EXPECT_EQ(b[2], 1u);
  EXPECT_EQ(b[3], 2u);
}

TEST(Stats, WithCommas) {
  EXPECT_EQ(du::with_commas(0), "0");
  EXPECT_EQ(du::with_commas(999), "999");
  EXPECT_EQ(du::with_commas(1000), "1,000");
  EXPECT_EQ(du::with_commas(1234567), "1,234,567");
  EXPECT_EQ(du::with_commas(1000000000ull), "1,000,000,000");
}

TEST(Timer, MeasuresElapsed) {
  du::Timer t;
  // dlint:allow(sleep-sync): a timer test must spend real wall time
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(t.seconds(), 0.015);
  t.restart();
  EXPECT_LT(t.seconds(), 0.015);
}

TEST(Timer, PhaseTimerAccumulates) {
  du::PhaseTimer pt;
  pt.add("a", 1.0);
  pt.add("a", 0.5);
  pt.add("b", 2.0);
  EXPECT_DOUBLE_EQ(pt.total("a"), 1.5);
  EXPECT_DOUBLE_EQ(pt.total("b"), 2.0);
  EXPECT_DOUBLE_EQ(pt.total("missing"), 0.0);
  pt.clear();
  EXPECT_DOUBLE_EQ(pt.total("a"), 0.0);
}

TEST(Timer, PhaseTimerPhasesSortedByName) {
  du::PhaseTimer pt;
  pt.add("swap", 3.0);
  pt.add("find", 1.0);
  pt.add("broadcast", 2.0);
  const auto rows = pt.phases();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].first, "broadcast");
  EXPECT_EQ(rows[1].first, "find");
  EXPECT_EQ(rows[2].first, "swap");
  EXPECT_DOUBLE_EQ(rows[1].second, 1.0);
}

TEST(Timer, ScopedPhaseRecords) {
  du::PhaseTimer pt;
  {
    du::ScopedPhase sp(pt, "scope");
    // dlint:allow(sleep-sync): a timer test must spend real wall time
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GT(pt.total("scope"), 0.005);
}
