#include <gtest/gtest.h>

#include "core/dist_louvain.hpp"
#include "core/louvain.hpp"
#include "graph/builder.hpp"
#include "graph/gen/generators.hpp"
#include "quality/metrics.hpp"
#include "util/check.hpp"

namespace dc = dinfomap::core;
namespace dg = dinfomap::graph;
namespace gen = dinfomap::graph::gen;

TEST(DistLouvain, RecoversRingOfCliques) {
  const auto gg = gen::ring_of_cliques(8, 5, 0);
  const auto g = dg::build_csr(gg.edges, gg.num_vertices);
  for (int p : {1, 2, 4}) {
    const auto result = dc::distributed_louvain(g, p);
    EXPECT_GT(dinfomap::quality::nmi(result.assignment, *gg.ground_truth), 0.95)
        << "p=" << p;
  }
}

TEST(DistLouvain, ReportedModularityMatchesAssignment) {
  const auto gg = gen::sbm(240, 6, 0.25, 0.01, 3);
  const auto g = dg::build_csr(gg.edges, gg.num_vertices);
  const auto result = dc::distributed_louvain(g, 3);
  EXPECT_NEAR(result.modularity,
              dinfomap::quality::modularity(g, result.assignment), 1e-12);
  EXPECT_GT(result.modularity, 0.3);
}

TEST(DistLouvain, CloseToSequentialLouvain) {
  const auto gg = gen::lfr_lite({}, 17);
  const auto g = dg::build_csr(gg.edges, gg.num_vertices);
  const auto seq = dc::louvain(g);
  const auto dist = dc::distributed_louvain(g, 4);
  EXPECT_GT(dist.modularity, seq.modularity * 0.9);
}

TEST(DistLouvain, DeterministicRepeat) {
  const auto gg = gen::lfr_lite({}, 23);
  const auto g = dg::build_csr(gg.edges, gg.num_vertices);
  const auto a = dc::distributed_louvain(g, 3);
  const auto b = dc::distributed_louvain(g, 3);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_DOUBLE_EQ(a.modularity, b.modularity);
}

TEST(DistLouvain, WorkAndCommTracked) {
  const auto gg = gen::lfr_lite({}, 29);
  const auto g = dg::build_csr(gg.edges, gg.num_vertices);
  const auto result = dc::distributed_louvain(g, 4);
  ASSERT_EQ(result.work_per_rank.size(), 4u);
  std::uint64_t arcs = 0, bytes = 0;
  for (const auto& w : result.work_per_rank) {
    arcs += w.arcs_scanned;
    bytes += w.bytes;
  }
  EXPECT_GT(arcs, 0u);
  EXPECT_GT(bytes, 0u);
  EXPECT_GT(result.total_rounds, 0);
  EXPECT_GE(result.levels, 1);
}

TEST(DistLouvain, RejectsZeroRanks) {
  const auto g = dg::build_csr({{0, 1}});
  EXPECT_THROW(dc::distributed_louvain(g, 0), dinfomap::ContractViolation);
}
