#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "graph/builder.hpp"
#include "graph/formats.hpp"
#include "graph/gen/generators.hpp"
#include "util/check.hpp"

namespace dg = dinfomap::graph;

namespace {
class FormatsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("dinfomap_fmt_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string path(const std::string& name) const { return (dir_ / name).string(); }
  std::filesystem::path dir_;
};

void expect_same_graph(const dg::Csr& a, const dg::Csr& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (dg::VertexId u = 0; u < a.num_vertices(); ++u) {
    ASSERT_EQ(a.degree(u), b.degree(u)) << "u=" << u;
    const auto na = a.neighbors(u);
    const auto nb = b.neighbors(u);
    for (std::size_t i = 0; i < na.size(); ++i) {
      EXPECT_EQ(na[i].target, nb[i].target);
      EXPECT_DOUBLE_EQ(na[i].weight, nb[i].weight);
    }
    EXPECT_DOUBLE_EQ(a.self_weight(u), b.self_weight(u));
  }
}
}  // namespace

TEST_F(FormatsTest, MetisRoundTripUnweighted) {
  const auto gg = dg::gen::ring_of_cliques(4, 4, 0);
  const auto g = dg::build_csr(gg.edges, gg.num_vertices);
  dg::write_metis(path("g.metis"), g);
  expect_same_graph(g, dg::read_metis(path("g.metis")));
}

TEST_F(FormatsTest, MetisRoundTripWeighted) {
  const auto g = dg::build_csr({{0, 1, 2.5}, {1, 2, 1.0}, {0, 2, 0.75}});
  dg::write_metis(path("w.metis"), g);
  expect_same_graph(g, dg::read_metis(path("w.metis")));
}

TEST_F(FormatsTest, MetisRejectsSelfLoops) {
  const auto g = dg::build_csr({{0, 0, 1.0}, {0, 1, 1.0}});
  EXPECT_THROW(dg::write_metis(path("x.metis"), g),
               dinfomap::ContractViolation);
}

TEST_F(FormatsTest, MetisCommentsAndCountMismatch) {
  {
    std::ofstream out(path("c.metis"));
    out << "% comment\n3 2\n2 3\n1\n1\n";
  }
  const auto g = dg::read_metis(path("c.metis"));
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  {
    std::ofstream out(path("bad.metis"));
    out << "3 5\n2 3\n1\n1\n";  // claims 5 edges, has 2
  }
  EXPECT_THROW((void)dg::read_metis(path("bad.metis")), std::runtime_error);
}

TEST_F(FormatsTest, MetisRejectsVertexWeights) {
  std::ofstream out(path("vw.metis"));
  out << "2 1 10\n5 2\n5 1\n";
  out.close();
  EXPECT_THROW((void)dg::read_metis(path("vw.metis")), std::runtime_error);
}

TEST_F(FormatsTest, PajekRoundTripWithSelfLoops) {
  const auto g = dg::build_csr({{0, 0, 2.0}, {0, 1, 1.5}, {1, 2, 1.0}});
  dg::write_pajek(path("g.net"), g);
  expect_same_graph(g, dg::read_pajek(path("g.net")));
}

TEST_F(FormatsTest, PajekSkipsVertexLabels) {
  std::ofstream out(path("l.net"));
  out << "*Vertices 3\n1 \"alpha\"\n2 \"beta\"\n3 \"gamma\"\n*Edges\n1 2\n2 3 2.0\n";
  out.close();
  const auto g = dg::read_pajek(path("l.net"));
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_DOUBLE_EQ(g.neighbors(1)[1].weight, 2.0);
}

TEST_F(FormatsTest, PajekRejectsMalformed) {
  {
    std::ofstream out(path("noheader.net"));
    out << "1 2\n";
  }
  EXPECT_THROW((void)dg::read_pajek(path("noheader.net")), std::runtime_error);
  {
    std::ofstream out(path("range.net"));
    out << "*Vertices 2\n*Edges\n1 5\n";
  }
  EXPECT_THROW((void)dg::read_pajek(path("range.net")), std::runtime_error);
  {
    std::ofstream out(path("noedges.net"));
    out << "*Vertices 2\n1 \"a\"\n2 \"b\"\n";
  }
  EXPECT_THROW((void)dg::read_pajek(path("noedges.net")), std::runtime_error);
}

TEST(WattsStrogatz, LatticeAtBetaZero) {
  const auto g = dg::gen::watts_strogatz(20, 4, 0.0, 1);
  EXPECT_EQ(g.edges.size(), 40u);  // n·k/2
  const auto csr = dg::build_csr(g.edges, g.num_vertices);
  for (dg::VertexId v = 0; v < 20; ++v) EXPECT_EQ(csr.degree(v), 4u);
}

TEST(WattsStrogatz, RewiringChangesStructure) {
  const auto lattice = dg::gen::watts_strogatz(200, 6, 0.0, 2);
  const auto rewired = dg::gen::watts_strogatz(200, 6, 0.5, 2);
  EXPECT_NE(lattice.edges, rewired.edges);
  // Edge count can only drop slightly (rejected rewires are skipped).
  EXPECT_GT(rewired.edges.size(), lattice.edges.size() * 9 / 10);
}

TEST(WattsStrogatz, RejectsBadParams) {
  EXPECT_THROW(dg::gen::watts_strogatz(10, 3, 0.1, 1),
               dinfomap::ContractViolation);  // odd k
  EXPECT_THROW(dg::gen::watts_strogatz(4, 4, 0.1, 1),
               dinfomap::ContractViolation);  // n <= k
  EXPECT_THROW(dg::gen::watts_strogatz(10, 4, 1.5, 1),
               dinfomap::ContractViolation);  // beta
}
