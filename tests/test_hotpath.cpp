// Tests of the hot-path data structures (SparseAccumulator, FlatMap,
// PlogpMemo) and the determinism contract of the rewritten move-search
// paths: bit-identical results across repeats, under comm chaos, and with
// the plogp memo on vs off.
#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/dist_infomap.hpp"
#include "core/mapequation.hpp"
#include "core/seq_infomap.hpp"
#include "graph/builder.hpp"
#include "graph/gen/generators.hpp"
#include "util/flat_map.hpp"
#include "util/random.hpp"
#include "util/sparse_accumulator.hpp"

namespace dc = dinfomap::core;
namespace dg = dinfomap::graph;
namespace du = dinfomap::util;
namespace gen = dinfomap::graph::gen;

// --- SparseAccumulator ------------------------------------------------------

TEST(SparseAccumulator, AccumulatesAndIteratesInFirstTouchOrder) {
  du::SparseAccumulator<std::uint32_t, double> acc(16);
  acc[5] += 1.0;
  acc[2] += 0.5;
  acc[5] += 2.0;
  acc[9] += 0.25;
  ASSERT_EQ(acc.size(), 3u);
  EXPECT_EQ(acc.keys(), (std::vector<std::uint32_t>{5, 2, 9}));
  EXPECT_DOUBLE_EQ(*acc.find(5), 3.0);
  EXPECT_DOUBLE_EQ(*acc.find(2), 0.5);
  EXPECT_DOUBLE_EQ(*acc.find(9), 0.25);
}

TEST(SparseAccumulator, ClearForgetsWithoutTouchingStorage) {
  du::SparseAccumulator<std::uint32_t, double> acc(8);
  acc[3] = 7.0;
  acc.clear();
  EXPECT_TRUE(acc.empty());
  EXPECT_FALSE(acc.contains(3));
  EXPECT_EQ(acc.find(3), nullptr);
  // Slots lazily reinitialize to V{} after a clear — stale values must not
  // leak through the epoch bump.
  EXPECT_DOUBLE_EQ(acc[3], 0.0);
  EXPECT_EQ(acc.capacity(), 8u);
}

TEST(SparseAccumulator, ValueOrReplacesDoubleLookup) {
  du::SparseAccumulator<std::uint32_t, double> acc(4);
  acc[1] = 2.5;
  EXPECT_DOUBLE_EQ(acc.value_or(1, -1.0), 2.5);
  EXPECT_DOUBLE_EQ(acc.value_or(2, -1.0), -1.0);
}

TEST(SparseAccumulator, ReuseAcrossManyEpochsMatchesFreshMap) {
  // Heavy reuse (the per-vertex gather pattern): the accumulator must agree
  // with a fresh unordered_map on every epoch.
  du::SparseAccumulator<std::uint32_t, double> acc(64);
  du::Xoshiro256 rng(123);
  for (int epoch = 0; epoch < 200; ++epoch) {
    acc.clear();
    std::unordered_map<std::uint32_t, double> ref;
    for (int i = 0; i < 40; ++i) {
      const auto k = static_cast<std::uint32_t>(rng.bounded(64));
      const double w = rng.uniform();
      acc[k] += w;
      ref[k] += w;
    }
    ASSERT_EQ(acc.size(), ref.size());
    for (const auto& [k, v] : ref) EXPECT_DOUBLE_EQ(*acc.find(k), v);
  }
}

TEST(SparseAccumulator, ResetGrowsCapacity) {
  du::SparseAccumulator<std::uint32_t, int> acc(4);
  acc[3] = 1;
  acc.reset(32);
  EXPECT_TRUE(acc.empty());
  EXPECT_GE(acc.capacity(), 32u);
  acc[31] = 9;
  EXPECT_EQ(*acc.find(31), 9);
}

TEST(SparseAccumulator, StructValuesDefaultInitialize) {
  struct Entry {
    double flow = 0;
    std::uint8_t boundary = 0;
  };
  du::SparseAccumulator<std::uint64_t, Entry> acc(8);
  acc[2].flow += 1.5;
  acc[2].boundary = 1;
  acc.clear();
  EXPECT_DOUBLE_EQ(acc[2].flow, 0.0);
  EXPECT_EQ(acc[2].boundary, 0);
}

// --- FlatMap ----------------------------------------------------------------

TEST(FlatMap, InsertFindUpdate) {
  du::FlatMap<std::uint64_t, int> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(7), m.end());
  m[7] = 1;
  m[7] += 2;
  auto [it, inserted] = m.emplace(9, 5);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(it->second, 5);
  auto [it2, inserted2] = m.emplace(9, 99);
  EXPECT_FALSE(inserted2);
  EXPECT_EQ(it2->second, 5);
  ASSERT_NE(m.find(7), m.end());
  EXPECT_EQ(m.find(7)->second, 3);
  EXPECT_EQ(m.count(7), 1u);
  EXPECT_EQ(m.count(8), 0u);
  EXPECT_EQ(m.size(), 2u);
}

TEST(FlatMap, ClearKeepsStorage) {
  du::FlatMap<std::uint64_t, int> m;
  for (std::uint64_t k = 0; k < 100; ++k) m[k] = static_cast<int>(k);
  const std::size_t cap = m.capacity();
  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.capacity(), cap);
  EXPECT_EQ(m.find(50), m.end());
  m[50] = 1;
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap, GrowthPreservesAllEntries) {
  du::FlatMap<std::uint64_t, std::uint64_t> m;
  constexpr std::uint64_t kN = 5000;
  for (std::uint64_t k = 0; k < kN; ++k) m[k * 977 + 13] = k;
  ASSERT_EQ(m.size(), kN);
  for (std::uint64_t k = 0; k < kN; ++k) {
    auto it = m.find(k * 977 + 13);
    ASSERT_NE(it, m.end()) << "key " << k * 977 + 13;
    EXPECT_EQ(it->second, k);
  }
  // Load factor stays below 7/8.
  EXPECT_GE(m.capacity() * 7, m.size() * 8);
}

TEST(FlatMap, CollisionHeavyKeysStillResolve) {
  // Craft keys that land in the same initial slot of a small table: same top
  // bits of mix(key). With capacity 16 the probe uses the top 4 bits, so
  // collect keys whose mixed top-16 bits match — they collide at every
  // capacity up to 65536 slots.
  using M = du::FlatMap<std::uint64_t, std::uint64_t>;
  const std::uint64_t want = M::mix(1) >> 48;
  std::vector<std::uint64_t> colliders;
  for (std::uint64_t k = 1; colliders.size() < 24 && k < 40'000'000; ++k) {
    if ((M::mix(k) >> 48) == want) colliders.push_back(k);
  }
  ASSERT_GE(colliders.size(), 12u) << "collision search too narrow";
  M m;
  for (std::size_t i = 0; i < colliders.size(); ++i) m[colliders[i]] = i;
  ASSERT_EQ(m.size(), colliders.size());
  for (std::size_t i = 0; i < colliders.size(); ++i) {
    auto it = m.find(colliders[i]);
    ASSERT_NE(it, m.end());
    EXPECT_EQ(it->second, i);
  }
  // Absent keys from the same bucket must probe to not-found, not loop.
  for (std::uint64_t k = 40'000'001; k < 40'000'032; ++k)
    EXPECT_EQ(m.count(k), 0u);
}

TEST(FlatMap, IterationVisitsEveryEntryOnce) {
  du::FlatMap<std::uint32_t, int> m;
  for (std::uint32_t k = 0; k < 300; ++k) m[k * 3 + 1] = 1;
  std::size_t visited = 0;
  std::uint64_t key_sum = 0;
  for (auto it = m.begin(); it != m.end(); ++it) {
    ++visited;
    key_sum += it->first;
  }
  EXPECT_EQ(visited, 300u);
  std::uint64_t want = 0;
  for (std::uint32_t k = 0; k < 300; ++k) want += k * 3 + 1;
  EXPECT_EQ(key_sum, want);
}

TEST(FlatMap, AgreesWithUnorderedMapUnderRandomWorkload) {
  du::FlatMap<std::uint64_t, double> m;
  std::unordered_map<std::uint64_t, double> ref;
  du::Xoshiro256 rng(77);
  for (int op = 0; op < 20000; ++op) {
    const std::uint64_t k = rng.bounded(4096);
    if (rng.uniform() < 0.7) {
      m[k] += 1.0;
      ref[k] += 1.0;
    } else {
      auto it = m.find(k);
      auto rit = ref.find(k);
      ASSERT_EQ(it == m.end(), rit == ref.end()) << "key " << k;
      if (rit != ref.end()) {
        EXPECT_DOUBLE_EQ(it->second, rit->second);
      }
    }
  }
  ASSERT_EQ(m.size(), ref.size());
  for (const auto& [k, v] : ref) EXPECT_DOUBLE_EQ(m.find(k)->second, v);
}

TEST(FlatMap, RehashCounterTracksGrowthOnly) {
  du::FlatMap<std::uint64_t, int> m;
  EXPECT_EQ(m.rehashes(), 0u);
  m.reserve(1000);  // allocation of an empty table is not a rehash
  EXPECT_EQ(m.rehashes(), 0u);
  for (std::uint64_t k = 0; k < 1000; ++k) m[k] = 1;
  EXPECT_EQ(m.rehashes(), 0u) << "reserve should have pre-sized the table";
  for (std::uint64_t k = 1000; k < 20'000; ++k) m[k] = 1;
  EXPECT_GT(m.rehashes(), 0u);
}

TEST(FlatMap, ConfigurableLoadFactorIsHonored) {
  // A denser table (95%) grows later than the default 7/8; a sparser one
  // (50%) grows earlier. Contents are unaffected either way.
  du::FlatMap<std::uint64_t, int> dense;
  dense.set_max_load(95, 100);
  du::FlatMap<std::uint64_t, int> sparse;
  sparse.set_max_load(1, 2);
  for (std::uint64_t k = 0; k < 5000; ++k) {
    dense[k * 31 + 7] = static_cast<int>(k);
    sparse[k * 31 + 7] = static_cast<int>(k);
  }
  EXPECT_GE(dense.capacity() * 95, dense.size() * 100);
  EXPECT_GE(sparse.capacity(), sparse.size() * 2);
  EXPECT_LT(dense.capacity(), sparse.capacity());
  for (std::uint64_t k = 0; k < 5000; ++k) {
    ASSERT_NE(dense.find(k * 31 + 7), dense.end());
    EXPECT_EQ(dense.find(k * 31 + 7)->second, static_cast<int>(k));
    ASSERT_NE(sparse.find(k * 31 + 7), sparse.end());
    EXPECT_EQ(sparse.find(k * 31 + 7)->second, static_cast<int>(k));
  }
  // Degenerate ratios are ignored, not applied.
  du::FlatMap<std::uint64_t, int> bad;
  bad.set_max_load(0, 10);
  bad.set_max_load(10, 10);
  bad.set_max_load(12, 10);
  for (std::uint64_t k = 0; k < 100; ++k) bad[k] = 1;
  EXPECT_GE(bad.capacity() * 7, bad.size() * 8);  // still the 7/8 default
}

// --- PlogpMemo --------------------------------------------------------------

TEST(PlogpMemo, BitIdenticalToPlainPlogp) {
  dc::PlogpMemo memo;
  du::Xoshiro256 rng(5);
  for (int i = 0; i < 100000; ++i) {
    // Mix fresh values with repeats (memo hits) across the plausible flow
    // range, including subnormal-adjacent and zero.
    const double x = (i % 3 == 0) ? rng.uniform() * 1e-3 : rng.uniform();
    EXPECT_EQ(memo(x), dc::plogp(x)) << "x=" << x;
    EXPECT_EQ(memo(x), dc::plogp(x)) << "repeat x=" << x;
  }
  EXPECT_EQ(memo(0.0), 0.0);
  EXPECT_EQ(memo(1.0), dc::plogp(1.0));
}

TEST(PlogpMemo, EvaluateMoveOverloadsAgreeBitwise) {
  dc::PlogpMemo memo;
  du::Xoshiro256 rng(17);
  for (int i = 0; i < 5000; ++i) {
    dc::MoveDelta d;
    d.p_u = rng.uniform() * 0.05;
    d.f_u = rng.uniform() * 0.04;
    d.f_to_old = rng.uniform() * 0.01;
    d.f_to_new = rng.uniform() * 0.01;
    d.old_stats = {rng.uniform(), rng.uniform() * 0.1, 1 + rng.bounded(50)};
    d.new_stats = {rng.uniform(), rng.uniform() * 0.1, 1 + rng.bounded(50)};
    d.q_total = rng.uniform();
    const auto plain = dc::evaluate_move(d);
    const auto memoized = dc::evaluate_move(d, memo);
    EXPECT_EQ(plain.delta_codelength, memoized.delta_codelength) << "i=" << i;
  }
}

// --- Determinism regression over the rewritten hot paths --------------------

TEST(HotpathDeterminism, SequentialMemoOnOffBitIdentical) {
  const auto gg = gen::lfr_lite({}, 11);
  const auto g = dg::build_csr(gg.edges, gg.num_vertices);
  dc::InfomapConfig on;
  on.plogp_memo = true;
  dc::InfomapConfig off;
  off.plogp_memo = false;
  const auto a = dc::sequential_infomap(g, on);
  const auto b = dc::sequential_infomap(g, off);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_DOUBLE_EQ(a.codelength, b.codelength);
}

TEST(HotpathDeterminism, DistributedChaosMemoOnOffBitIdentical) {
  // The acceptance gate of ISSUE 1: on ≥4 ranks, with randomized message
  // delivery timing, the flat-accumulator + memoized path must reproduce the
  // reference path's partition and codelength exactly.
  const auto gg = gen::lfr_lite({}, 29);
  const auto g = dg::build_csr(gg.edges, gg.num_vertices);
  for (int p : {4, 5}) {
    dc::DistInfomapConfig cfg;
    cfg.num_ranks = p;
    cfg.chaos_delay_us = 40;
    cfg.plogp_memo = true;
    const auto memo_run = dc::distributed_infomap(g, cfg);
    cfg.chaos_delay_us = 90;  // different timing, same answer required
    const auto memo_chaos = dc::distributed_infomap(g, cfg);
    cfg.plogp_memo = false;
    const auto plain_run = dc::distributed_infomap(g, cfg);
    EXPECT_EQ(memo_run.assignment, memo_chaos.assignment) << "p=" << p;
    EXPECT_EQ(memo_run.assignment, plain_run.assignment) << "p=" << p;
    EXPECT_DOUBLE_EQ(memo_run.codelength, memo_chaos.codelength) << "p=" << p;
    EXPECT_DOUBLE_EQ(memo_run.codelength, plain_run.codelength) << "p=" << p;
  }
}

TEST(HotpathDeterminism, DistributedRepeatBitIdentical) {
  const auto gg = gen::sbm(300, 10, 0.2, 0.01, 13);
  const auto g = dg::build_csr(gg.edges, gg.num_vertices);
  dc::DistInfomapConfig cfg;
  cfg.num_ranks = 4;
  const auto a = dc::distributed_infomap(g, cfg);
  const auto b = dc::distributed_infomap(g, cfg);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_DOUBLE_EQ(a.codelength, b.codelength);
}
