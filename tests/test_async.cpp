// Tests for the two move-scheduling fast paths (DESIGN.md §12):
//  - the deterministic active-set fast path of the synchronous engine, whose
//    contract is *bit-identity* with full sweeps (same partition, same MDL,
//    for any thread count, also under transport faults), and
//  - the asynchronous priority-worklist engine, whose contract is bounded
//    divergence (MDL within 1% of the synchronous reference) plus exact
//    determinism for a fixed (graph, seed, ranks, lag).
#include <gtest/gtest.h>

#include <cstdint>

#include "core/dist_infomap.hpp"
#include "core/flowgraph.hpp"
#include "graph/builder.hpp"
#include "graph/gen/generators.hpp"

namespace dc = dinfomap::core;
namespace dg = dinfomap::graph;
namespace gen = dinfomap::graph::gen;

namespace {

dc::DistInfomapConfig config_for(int p) {
  dc::DistInfomapConfig cfg;
  cfg.num_ranks = p;
  return cfg;
}

std::uint64_t total_pruned(const dc::DistInfomapResult& r) {
  std::uint64_t n = 0;
  for (const auto& per_rank : r.work)
    for (const auto& wc : per_rank) n += wc.pruned_evals;
  return n;
}

void expect_bit_identical(const dc::DistInfomapResult& a,
                          const dc::DistInfomapResult& b, const char* what) {
  EXPECT_EQ(a.assignment, b.assignment) << what;
  EXPECT_DOUBLE_EQ(a.codelength, b.codelength) << what;
  EXPECT_DOUBLE_EQ(a.singleton_codelength, b.singleton_codelength) << what;
  ASSERT_EQ(a.stage1_round_codelengths.size(),
            b.stage1_round_codelengths.size())
      << what;
  for (std::size_t i = 0; i < a.stage1_round_codelengths.size(); ++i)
    EXPECT_DOUBLE_EQ(a.stage1_round_codelengths[i],
                     b.stage1_round_codelengths[i])
        << what << " round " << i;
}

}  // namespace

// --- active-set fast path ---------------------------------------------------

TEST(ActiveSet, BitIdenticalToFullSweeps) {
  const auto gg = gen::lfr_lite({}, 47);
  const auto g = dg::build_csr(gg.edges, gg.num_vertices);
  for (int p : {4, 5}) {
    auto full_cfg = config_for(p);
    const auto full = dc::distributed_infomap(g, full_cfg);
    auto fast_cfg = full_cfg;
    fast_cfg.active_set = true;
    for (int threads : {1, 2, 4}) {
      fast_cfg.threads_per_rank = threads;
      const auto fast = dc::distributed_infomap(g, fast_cfg);
      expect_bit_identical(full, fast, "active-set vs full");
      // The fast path must actually skip work, not just match trivially.
      EXPECT_GT(total_pruned(fast), 0u) << "p=" << p << " t=" << threads;
      EXPECT_EQ(total_pruned(full), 0u);
    }
  }
}

TEST(ActiveSet, BitIdenticalOnHubGraph) {
  // Delegates take the hub-consensus path (apply_hub_winners); their stamping
  // must keep the pruning exact too.
  const auto gg = gen::barabasi_albert(900, 2, 51);
  const auto g = dg::build_csr(gg.edges, gg.num_vertices);
  auto cfg = config_for(4);
  const auto full = dc::distributed_infomap(g, cfg);
  cfg.active_set = true;
  const auto fast = dc::distributed_infomap(g, cfg);
  expect_bit_identical(full, fast, "active-set on hubs");
  EXPECT_GT(total_pruned(fast), 0u);
}

TEST(ActiveSet, BitIdenticalUnderTransportFaults) {
  // Fault recovery is transparent (PR 3); layering the active-set on top must
  // not change that — the triple (full, fast, fast-under-faults) collapses to
  // one partition.
  const auto gg = gen::sbm(240, 6, 0.25, 0.01, 53);
  const auto g = dg::build_csr(gg.edges, gg.num_vertices);
  auto cfg = config_for(4);
  const auto full = dc::distributed_infomap(g, cfg);
  cfg.active_set = true;
  const auto fast = dc::distributed_infomap(g, cfg);
  cfg.faults.drop = 0.05;
  cfg.faults.duplicate = 0.05;
  cfg.faults.reorder = 0.05;
  cfg.faults.seed = 7;
  const auto faulty = dc::distributed_infomap(g, cfg);
  expect_bit_identical(full, fast, "active-set, fault-free");
  expect_bit_identical(full, faulty, "active-set under faults");
}

TEST(ActiveSet, PrunesHeavilyOnConvergedRounds) {
  // On a community-structured graph whose convergence is localized, the
  // skipped evaluations must add up to more than one full sweep's worth —
  // the fast path pays for itself. (Graphs that converge in a single round
  // prune nothing — every vertex moves, then the level ends on the first
  // quiet round — and mushy overlapping structure churns every
  // neighborhood; the invariant contract there is bit-identity, not
  // savings.)
  const auto gg = gen::sbm(2000, 40, 0.20, 0.002, 5);
  const auto g = dg::build_csr(gg.edges, gg.num_vertices);
  auto cfg = config_for(4);
  cfg.active_set = true;
  const auto r = dc::distributed_infomap(g, cfg);
  EXPECT_GT(total_pruned(r), g.num_vertices());
}

// --- async priority-worklist engine -----------------------------------------

TEST(Async, QualityWithinOnePercentOfSync) {
  const auto gg = gen::lfr_lite({}, 59);
  const auto g = dg::build_csr(gg.edges, gg.num_vertices);
  const auto fg = dc::make_flow_graph(g);
  for (int p : {4, 5}) {
    const auto sync = dc::distributed_infomap(g, config_for(p));
    auto cfg = config_for(p);
    cfg.async = true;
    const auto as = dc::distributed_infomap(g, cfg);
    EXPECT_EQ(as.assignment.size(), g.num_vertices()) << "p=" << p;
    // Reported L must still be the exact score of the gathered assignment.
    EXPECT_NEAR(as.codelength, dc::codelength_of_partition(fg, as.assignment),
                1e-9)
        << "p=" << p;
    EXPECT_LT(as.codelength, as.singleton_codelength) << "p=" << p;
    EXPECT_LT(as.codelength, sync.codelength * 1.01) << "p=" << p;
  }
}

TEST(Async, DeterministicForFixedSeedRanksLag) {
  const auto gg = gen::lfr_lite({}, 61);
  const auto g = dg::build_csr(gg.edges, gg.num_vertices);
  for (int lag : {1, 4}) {
    auto cfg = config_for(4);
    cfg.async = true;
    cfg.async_max_lag = lag;
    const auto a = dc::distributed_infomap(g, cfg);
    const auto b = dc::distributed_infomap(g, cfg);
    EXPECT_EQ(a.assignment, b.assignment) << "lag=" << lag;
    EXPECT_DOUBLE_EQ(a.codelength, b.codelength) << "lag=" << lag;
  }
}

TEST(Async, LagOneMatchesQualityBand) {
  // lag=1 reconciles every epoch — the async engine's most synchronous
  // setting; it must stay in the same quality band.
  const auto gg = gen::sbm(240, 6, 0.25, 0.01, 67);
  const auto g = dg::build_csr(gg.edges, gg.num_vertices);
  const auto sync = dc::distributed_infomap(g, config_for(4));
  auto cfg = config_for(4);
  cfg.async = true;
  cfg.async_max_lag = 1;
  const auto as = dc::distributed_infomap(g, cfg);
  EXPECT_LT(as.codelength, sync.codelength * 1.01);
}

TEST(Async, StarvedWorklistTerminates) {
  // Disconnected cliques: after the first drain every worklist is empty and
  // stays empty (no cross-rank module traffic re-activates anything). The
  // epoch loop must detect the globally quiet state and exit instead of
  // spinning to the round cap.
  dg::EdgeList edges;
  for (dg::VertexId c = 0; c < 8; ++c) {
    const dg::VertexId base = c * 5;
    for (dg::VertexId i = 0; i < 5; ++i)
      for (dg::VertexId j = i + 1; j < 5; ++j)
        edges.push_back({base + i, base + j, 1.0});
  }
  const auto g = dg::build_csr(edges, 40);
  auto cfg = config_for(4);
  cfg.async = true;
  const auto r = dc::distributed_infomap(g, cfg);
  EXPECT_EQ(r.num_modules(), 8u);
  EXPECT_LT(r.codelength, r.singleton_codelength);
  // Termination came from quiescence, far below the epoch budget.
  EXPECT_LT(r.stage1_rounds, cfg.max_rounds * cfg.async_max_lag);
}

TEST(Async, HubGraphStaysInBand) {
  // Delegate consensus only happens at reconciliation in the async engine;
  // hubs must still land in sensible modules.
  const auto gg = gen::barabasi_albert(900, 2, 71);
  const auto g = dg::build_csr(gg.edges, gg.num_vertices);
  const auto fg = dc::make_flow_graph(g);
  const auto sync = dc::distributed_infomap(g, config_for(4));
  auto cfg = config_for(4);
  cfg.async = true;
  const auto as = dc::distributed_infomap(g, cfg);
  EXPECT_NEAR(as.codelength, dc::codelength_of_partition(fg, as.assignment),
              1e-9);
  EXPECT_LT(as.codelength, sync.codelength * 1.01);
}

TEST(Async, ThreadsDoNotChangeResult) {
  // The async drain itself is single-threaded per rank (the heap order is the
  // schedule); threads only parallelize reconciliation sweeps. Results must
  // be independent of the thread count.
  const auto gg = gen::lfr_lite({}, 73);
  const auto g = dg::build_csr(gg.edges, gg.num_vertices);
  auto cfg = config_for(4);
  cfg.async = true;
  const auto t1 = dc::distributed_infomap(g, cfg);
  cfg.threads_per_rank = 4;
  const auto t4 = dc::distributed_infomap(g, cfg);
  EXPECT_EQ(t1.assignment, t4.assignment);
  EXPECT_DOUBLE_EQ(t1.codelength, t4.codelength);
}
