#include <gtest/gtest.h>

#include "core/labelflow.hpp"
#include "core/louvain.hpp"
#include "core/seq_infomap.hpp"
#include "graph/builder.hpp"
#include "graph/gen/generators.hpp"
#include "quality/metrics.hpp"

namespace dc = dinfomap::core;
namespace dg = dinfomap::graph;
namespace gen = dinfomap::graph::gen;

TEST(Louvain, RecoversRingOfCliques) {
  const auto gg = gen::ring_of_cliques(8, 5, 0);
  const auto g = dg::build_csr(gg.edges, gg.num_vertices);
  const auto result = dc::louvain(g);
  EXPECT_DOUBLE_EQ(dinfomap::quality::nmi(result.assignment, *gg.ground_truth), 1.0);
}

TEST(Louvain, ReportedModularityMatchesAssignment) {
  const auto gg = gen::sbm(300, 5, 0.2, 0.01, 3);
  const auto g = dg::build_csr(gg.edges, gg.num_vertices);
  const auto result = dc::louvain(g);
  EXPECT_NEAR(result.modularity,
              dinfomap::quality::modularity(g, result.assignment), 1e-9);
}

TEST(Louvain, ModularityIsPositiveOnCommunityGraphs) {
  const auto gg = gen::lfr_lite({}, 7);
  const auto g = dg::build_csr(gg.edges, gg.num_vertices);
  const auto result = dc::louvain(g);
  EXPECT_GT(result.modularity, 0.3);
}

TEST(Louvain, DeterministicForFixedSeed) {
  const auto gg = gen::lfr_lite({}, 9);
  const auto g = dg::build_csr(gg.edges, gg.num_vertices);
  const auto a = dc::louvain(g);
  const auto b = dc::louvain(g);
  EXPECT_EQ(a.assignment, b.assignment);
}

TEST(LabelFlow, RecoversRingOfCliquesSingleRank) {
  const auto gg = gen::ring_of_cliques(8, 5, 0);
  const auto g = dg::build_csr(gg.edges, gg.num_vertices);
  const auto result = dc::distributed_labelflow(g, 1);
  EXPECT_GT(dinfomap::quality::nmi(result.assignment, *gg.ground_truth), 0.99);
}

TEST(LabelFlow, RankCountDoesNotWreckQuality) {
  const auto gg = gen::ring_of_cliques(10, 6, 0);
  const auto g = dg::build_csr(gg.edges, gg.num_vertices);
  for (int p : {1, 2, 4}) {
    const auto result = dc::distributed_labelflow(g, p);
    EXPECT_GT(dinfomap::quality::nmi(result.assignment, *gg.ground_truth), 0.9)
        << "p=" << p;
  }
}

TEST(LabelFlow, CodelengthScoredOnLevel0) {
  const auto gg = gen::sbm(200, 4, 0.3, 0.01, 5);
  const auto g = dg::build_csr(gg.edges, gg.num_vertices);
  const auto result = dc::distributed_labelflow(g, 2);
  // The score must equal an independent recomputation.
  const auto fg = dc::make_flow_graph(g);
  EXPECT_NEAR(result.codelength,
              dc::codelength_of_partition(fg, result.assignment), 1e-9);
}

TEST(LabelFlow, ReportsWorkAndComm) {
  const auto gg = gen::lfr_lite({}, 15);
  const auto g = dg::build_csr(gg.edges, gg.num_vertices);
  const auto result = dc::distributed_labelflow(g, 4);
  ASSERT_EQ(result.work_per_rank.size(), 4u);
  std::uint64_t arcs = 0, bytes = 0;
  for (const auto& w : result.work_per_rank) {
    arcs += w.arcs_scanned;
    bytes += w.bytes;
  }
  EXPECT_GT(arcs, 0u);
  EXPECT_GT(bytes, 0u);  // multi-rank runs must communicate
  EXPECT_GT(result.total_rounds, 0);
}

TEST(LabelFlow, InfomapCodelengthBeatsOrMatchesLabelFlow) {
  // Infomap optimizes L directly; the label baseline usually lands higher
  // (worse). Allow equality for crisp graphs.
  const auto gg = gen::lfr_lite({}, 27);
  const auto g = dg::build_csr(gg.edges, gg.num_vertices);
  const auto lf = dc::distributed_labelflow(g, 2);
  const auto im = dc::sequential_infomap(g);
  EXPECT_LE(im.codelength, lf.codelength + 1e-9);
}
