// dcheck model-checker suite (DESIGN.md §16). For every shipped harness:
// the clean exploration must pass, the seeded mutation must be caught with
// the expected failure kind, and the printed schedule string must replay to
// the same failure. Plus direct checks of the core detectors on minimal
// bodies (race, deadlock, lock-order cycle, lost wakeup, invariants).
#include <gtest/gtest.h>

#include <string>

#include "model.hpp"
#include "util/mutex.hpp"
#include "util/sched_point.hpp"

namespace dcheck = dinfomap::dcheck;

namespace {

dcheck::Options quick_options() {
  dcheck::Options opts;
  opts.max_preemptions = 3;
  opts.max_seconds = 30.0;  // per-harness budget; typical runs are << 1s
  return opts;
}

struct HarnessCase {
  std::string name;
  std::string expected_kind;  ///< failure kind the seeded mutation triggers
};

class HarnessSuite : public ::testing::TestWithParam<HarnessCase> {};

TEST_P(HarnessSuite, CleanExplorationPasses) {
  const auto* h = dcheck::find_harness(GetParam().name);
  ASSERT_NE(h, nullptr);
  const auto res = dcheck::run_harness(*h, quick_options());
  EXPECT_FALSE(res.failed) << res.kind << ": " << res.detail
                           << "\nschedule: " << res.schedule;
  EXPECT_FALSE(res.truncated) << "exploration blew the 30s/quick budget";
  EXPECT_GT(res.schedules, 1u) << "harness explored only one interleaving";
}

TEST_P(HarnessSuite, SeededMutationCaught) {
  const auto* h = dcheck::find_harness(GetParam().name);
  ASSERT_NE(h, nullptr);
  ASSERT_FALSE(h->mutation.empty());
  auto opts = quick_options();
  opts.mutation = h->mutation;
  const auto res = dcheck::run_harness(*h, opts);
  ASSERT_TRUE(res.failed) << "mutation " << h->mutation << " not caught in "
                          << res.schedules << " schedules";
  EXPECT_EQ(res.kind, GetParam().expected_kind) << res.detail;
  EXPECT_FALSE(res.schedule.empty());
  EXPECT_FALSE(res.trace.empty()) << "failure came without a replayed trace";
  EXPECT_GE(res.failing_bound, 0);
  EXPECT_LE(res.failing_bound, 3);

  // The printed schedule string must reproduce the bug deterministically.
  auto replay = quick_options();
  replay.mutation = h->mutation;
  replay.replay = res.schedule;
  const auto again = dcheck::run_harness(*h, replay);
  ASSERT_TRUE(again.failed) << "schedule '" << res.schedule
                            << "' did not replay";
  EXPECT_EQ(again.kind, res.kind);
  EXPECT_EQ(again.schedules, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    AllHarnesses, HarnessSuite,
    ::testing::Values(HarnessCase{"threadpool", "data-race"},
                      HarnessCase{"mailbox", "lost-wakeup"},
                      HarnessCase{"relaxmap-pair", "lock-order-cycle"},
                      HarnessCase{"worklist", "data-race"}),
    [](const ::testing::TestParamInfo<HarnessCase>& param_info) {
      std::string n = param_info.param.name;
      for (auto& c : n)
        if (c == '-') c = '_';
      return n;
    });

TEST(DcheckRegistry, AllHarnessesNamedAndMutated) {
  EXPECT_EQ(dcheck::harnesses().size(), 4u);
  for (const auto& h : dcheck::harnesses()) {
    EXPECT_NE(dcheck::find_harness(h.name), nullptr);
    EXPECT_FALSE(h.mutation.empty()) << h.name;
  }
  EXPECT_EQ(dcheck::find_harness("no-such-harness"), nullptr);
}

// --- core detectors on minimal bodies --------------------------------------

TEST(DcheckModel, FindsMinimalDataRace) {
  int shared = 0;
  const auto res = dcheck::explore(quick_options(), [&](dcheck::Context& ctx) {
    shared = 0;
    ctx.spawn("writer", [&] {
      DI_SCHED_STORE(&shared, "test.shared");
      shared = 1;
    });
    DI_SCHED_STORE(&shared, "test.shared");
    shared = 2;
    ctx.join_spawned();
  });
  ASSERT_TRUE(res.failed);
  EXPECT_EQ(res.kind, "data-race");
  EXPECT_NE(res.detail.find("test.shared"), std::string::npos) << res.detail;
}

TEST(DcheckModel, MutexOrderingSuppressesRace) {
  dinfomap::util::Mutex mu;
  int shared = 0;
  const auto res = dcheck::explore(quick_options(), [&](dcheck::Context& ctx) {
    shared = 0;
    ctx.spawn("writer", [&] {
      dinfomap::util::MutexLock lock(mu);
      DI_SCHED_STORE(&shared, "test.shared");
      shared = 1;
    });
    {
      dinfomap::util::MutexLock lock(mu);
      DI_SCHED_STORE(&shared, "test.shared");
      shared = 2;
    }
    ctx.join_spawned();
  });
  EXPECT_FALSE(res.failed) << res.kind << ": " << res.detail;
}

TEST(DcheckModel, FindsAbBaDeadlockAndCycle) {
  dinfomap::util::Mutex a;
  dinfomap::util::Mutex b;
  const auto res = dcheck::explore(quick_options(), [&](dcheck::Context& ctx) {
    ctx.spawn("ab", [&] {
      dinfomap::util::MutexLock la(a);
      dinfomap::util::MutexLock lb(b);  // dlint:allow(lock-order): the
                                        // inversion under test
    });
    ctx.spawn("ba", [&] {
      dinfomap::util::MutexLock lb(b);
      dinfomap::util::MutexLock la(a);  // dlint:allow(lock-order): the
                                        // inversion under test
    });
    ctx.join_spawned();
  });
  ASSERT_TRUE(res.failed);
  // The lock-order graph catches the inversion even on schedules that do not
  // deadlock, so the cycle fires first (at bound 0).
  EXPECT_EQ(res.kind, "lock-order-cycle");
  EXPECT_EQ(res.failing_bound, 0);
  EXPECT_NE(res.detail.find("while holding"), std::string::npos) << res.detail;
}

TEST(DcheckModel, DiagnosesLostWakeupAsDeadlockWithCvWaiter) {
  dinfomap::util::Mutex mu;
  dinfomap::util::CondVar cv;
  const auto res = dcheck::explore(quick_options(), [&](dcheck::Context& ctx) {
    bool ready = false;
    ctx.spawn("waiter", [&] {
      // Deliberate bug: the flag is peeked outside the mutex, so the notify
      // can land between the peek and the wait — a lost wakeup. The accesses
      // are marked atomic: the model only interleaves at annotated points,
      // and an unannotated peek would be folded into the adjacent ops (and
      // a plain-access annotation would trip the race detector first).
      DI_SCHED_ATOMIC(&ready, false, "test.ready");
      if (!ready) {
        dinfomap::util::MutexLock lock(mu);
        lock.wait(cv);
      }
    });
    {
      dinfomap::util::MutexLock lock(mu);
      DI_SCHED_ATOMIC(&ready, true, "test.ready");
      ready = true;
    }
    cv.notify_one();
    ctx.join_spawned();
  });
  ASSERT_TRUE(res.failed);
  EXPECT_EQ(res.kind, "lost-wakeup") << res.detail;
}

TEST(DcheckModel, InvariantFailureCarriesSchedule) {
  const auto res = dcheck::explore(quick_options(), [&](dcheck::Context& ctx) {
    ctx.spawn("noop", [] {});
    ctx.join_spawned();
    ctx.check(false, "intentional");
  });
  ASSERT_TRUE(res.failed);
  EXPECT_EQ(res.kind, "assert");
  EXPECT_NE(res.detail.find("intentional"), std::string::npos);
  EXPECT_FALSE(res.schedule.empty());
}

TEST(DcheckModel, TimedWaitExploresBothBranches) {
  dinfomap::util::Mutex mu;
  dinfomap::util::CondVar cv;
  int timeouts = 0;
  int wakeups = 0;
  const auto res = dcheck::explore(quick_options(), [&](dcheck::Context& ctx) {
    ctx.spawn("notifier", [&] { cv.notify_one(); });
    {
      dinfomap::util::MutexLock lock(mu);
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::microseconds(1);
      if (lock.wait_until(cv, deadline) == std::cv_status::timeout)
        ++timeouts;
      else
        ++wakeups;
    }
    ctx.join_spawned();
  });
  EXPECT_FALSE(res.failed) << res.kind << ": " << res.detail;
  // Virtual time: schedules exist where the notify lands first (wakeup) and
  // where the waiter gives up first (timeout) — both must have been run.
  EXPECT_GT(timeouts, 0);
  EXPECT_GT(wakeups, 0);
}

TEST(DcheckModel, ReplayMismatchIsReportedNotHung) {
  dcheck::Options opts = quick_options();
  opts.replay = "0,999,0";
  const auto res = dcheck::explore(opts, [&](dcheck::Context& ctx) {
    ctx.spawn("noop", [] {});
    ctx.join_spawned();
  });
  ASSERT_TRUE(res.failed);
  EXPECT_EQ(res.kind, "replay-mismatch");
}

}  // namespace
