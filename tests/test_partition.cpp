#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/gen/generators.hpp"
#include "partition/arc_partition.hpp"
#include "partition/metrics.hpp"
#include "util/stats.hpp"

namespace dg = dinfomap::graph;
namespace dp = dinfomap::partition;
namespace gen = dinfomap::graph::gen;

namespace {
dg::Csr star_plus_path() {
  // Hub 0 with 8 spokes, plus a path 9-10-11-12.
  dg::EdgeList edges;
  for (dg::VertexId v = 1; v <= 8; ++v) edges.push_back({0, v});
  edges.push_back({9, 10});
  edges.push_back({10, 11});
  edges.push_back({11, 12});
  return dg::build_csr(edges);
}

dg::Csr scale_free(std::uint64_t seed = 42) {
  const auto g = gen::barabasi_albert(3000, 2, seed);
  return dg::build_csr(g.edges, g.num_vertices);
}
}  // namespace

TEST(OneD, AssignsArcsBySourceOwner) {
  const auto g = star_plus_path();
  const auto part = dp::make_oned(g, 3);
  EXPECT_TRUE(dp::validate_partition(part, g));
  for (int r = 0; r < 3; ++r)
    for (const auto& arc : part.rank_arcs[r])
      EXPECT_EQ(part.owner(arc.source), r);
}

TEST(OneD, HubConcentratesLoad) {
  const auto g = star_plus_path();
  const auto part = dp::make_oned(g, 13);  // one vertex per rank
  const auto loads = dp::arcs_per_rank(part);
  EXPECT_EQ(loads[0], 8u);  // the whole star adjacency sits on rank 0
}

TEST(Delegate, DefaultThresholdIsRankCount) {
  const auto g = scale_free();
  const auto part = dp::make_delegate(g, 8);
  EXPECT_EQ(part.degree_threshold, 8u);
  EXPECT_EQ(part.strategy, dp::Strategy::kDelegate);
}

TEST(Delegate, EveryArcAssignedExactlyOnce) {
  const auto g = scale_free();
  for (int p : {2, 3, 5, 8}) {
    const auto part = dp::make_delegate(g, p);
    EXPECT_TRUE(dp::validate_partition(part, g)) << "p=" << p;
  }
}

TEST(Delegate, HubsAreFlagged) {
  const auto g = star_plus_path();
  const auto part = dp::make_delegate(g, 3, 4);
  EXPECT_TRUE(part.delegate(0));  // degree 8 > 4
  for (dg::VertexId v = 1; v < 13; ++v) EXPECT_FALSE(part.delegate(v));
}

TEST(Delegate, LowDegreeAdjacencyStaysWithOwner) {
  const auto g = scale_free();
  const auto part = dp::make_delegate(g, 4);
  // Count per-vertex arcs across ranks for non-delegates: all must be at the
  // owner (validate_partition also checks this, but assert the distribution).
  std::vector<std::uint64_t> at_owner(g.num_vertices(), 0);
  for (int r = 0; r < 4; ++r)
    for (const auto& arc : part.rank_arcs[r])
      if (!part.delegate(arc.source)) {
        EXPECT_EQ(part.owner(arc.source), r);
        ++at_owner[arc.source];
      }
  for (dg::VertexId v = 0; v < g.num_vertices(); ++v) {
    if (!part.delegate(v)) {
      EXPECT_EQ(at_owner[v], g.degree(v));
    }
  }
}

TEST(OneDBalanced, ContiguousAndBalanced) {
  const auto g = scale_free();
  const auto part = dp::make_oned_balanced(g, 8);
  EXPECT_TRUE(dp::validate_partition(part, g));
  // Ownership is a monotone step function of vertex id.
  for (dg::VertexId v = 1; v < g.num_vertices(); ++v)
    EXPECT_GE(part.owner(v), part.owner(v - 1));
  const auto s = dinfomap::util::summarize_counts(dp::arcs_per_rank(part));
  // BA puts early hubs together, so balance is bounded by the largest hub;
  // it must still beat round-robin 1D substantially.
  const auto rr = dinfomap::util::summarize_counts(
      dp::arcs_per_rank(dp::make_oned(g, 8)));
  EXPECT_LT(s.imbalance, rr.imbalance);
}

TEST(HashPartition, ValidAndSeedStable) {
  const auto g = scale_free();
  const auto a = dp::make_hash(g, 4, 7);
  const auto b = dp::make_hash(g, 4, 7);
  const auto c = dp::make_hash(g, 4, 8);
  EXPECT_TRUE(dp::validate_partition(a, g));
  EXPECT_EQ(a.owners, b.owners);
  EXPECT_NE(a.owners, c.owners);
}

TEST(Ownership, RoundRobinDetection) {
  const auto g = scale_free();
  EXPECT_TRUE(dp::make_oned(g, 4).round_robin_ownership());
  EXPECT_TRUE(dp::make_delegate(g, 4).round_robin_ownership());
  EXPECT_FALSE(dp::make_oned_balanced(g, 4).round_robin_ownership());
}

TEST(Delegate, BalancesLoadBetterThanOneD) {
  const auto g = scale_free();
  for (int p : {4, 8, 16}) {
    const auto oned = dinfomap::util::summarize_counts(
        dp::arcs_per_rank(dp::make_oned(g, p)));
    const auto del = dinfomap::util::summarize_counts(
        dp::arcs_per_rank(dp::make_delegate(g, p)));
    EXPECT_LT(del.imbalance, oned.imbalance) << "p=" << p;
    EXPECT_LT(del.imbalance, 1.3) << "p=" << p;  // near-even, as the paper claims
  }
}

TEST(Delegate, ReducesWorstCaseGhosts) {
  const auto g = scale_free();
  const int p = 8;
  const auto g_1d = dp::ghosts_per_rank(dp::make_oned(g, p));
  const auto g_dp = dp::ghosts_per_rank(dp::make_delegate(g, p));
  const auto s1 = dinfomap::util::summarize_counts(g_1d);
  const auto s2 = dinfomap::util::summarize_counts(g_dp);
  EXPECT_LT(s2.max, s1.max);
}

TEST(Delegate, SinglePartitionDegenerate) {
  const auto g = star_plus_path();
  const auto part = dp::make_delegate(g, 1);
  EXPECT_TRUE(dp::validate_partition(part, g));
  EXPECT_EQ(part.rank_arcs[0].size(), g.num_arcs());
}

TEST(Delegate, ExplicitThresholdHonored) {
  const auto g = scale_free();
  const auto part = dp::make_delegate(g, 4, 1000000);
  // Threshold too high for any hub: behaves like 1D (all arcs at source
  // owner) but still validates.
  EXPECT_TRUE(dp::validate_partition(part, g));
  for (dg::VertexId v = 0; v < g.num_vertices(); ++v)
    EXPECT_FALSE(part.delegate(v));
}

TEST(Metrics, GhostDefinitionMatchesLocality) {
  // Path 0-1-2 on 3 ranks, 1D: rank 0 holds arcs of vertex 0 (→1), so 1 is a
  // ghost there.
  const auto g = dg::build_csr({{0, 1}, {1, 2}});
  const auto part = dp::make_oned(g, 3);
  const auto ghosts = dp::ghosts_per_rank(part);
  EXPECT_EQ(ghosts[0], 1u);  // sees 1
  EXPECT_EQ(ghosts[1], 2u);  // sees 0 and 2
  EXPECT_EQ(ghosts[2], 1u);  // sees 1
}

class PartitionSweep : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Ranks, PartitionSweep, ::testing::Values(1, 2, 3, 4, 7, 16));

TEST_P(PartitionSweep, BothStrategiesValidateOnLfr) {
  const auto g = gen::lfr_lite({}, 99);
  const auto csr = dg::build_csr(g.edges, g.num_vertices);
  EXPECT_TRUE(dp::validate_partition(dp::make_oned(csr, GetParam()), csr));
  EXPECT_TRUE(dp::validate_partition(dp::make_delegate(csr, GetParam()), csr));
}
