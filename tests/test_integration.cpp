// Cross-module integration: the full pipeline (registry dataset → partition
// → every detector → metrics → summaries) on the small Table-1 stand-ins,
// checking the consistency relations between components rather than any one
// module in isolation.
#include <gtest/gtest.h>

#include "core/dist_infomap.hpp"
#include "core/dist_louvain.hpp"
#include "core/labelflow.hpp"
#include "core/louvain.hpp"
#include "core/relaxmap.hpp"
#include "core/seq_infomap.hpp"
#include "graph/builder.hpp"
#include "graph/transform.hpp"
#include "io/datasets.hpp"
#include "quality/community_stats.hpp"
#include "quality/metrics.hpp"

namespace dc = dinfomap::core;
namespace dg = dinfomap::graph;
namespace dq = dinfomap::quality;
namespace dio = dinfomap::io;

namespace {
class SmallDataset : public ::testing::TestWithParam<const char*> {};
}  // namespace

INSTANTIATE_TEST_SUITE_P(Registry, SmallDataset,
                         ::testing::Values("amazon", "dblp", "ndweb"));

TEST_P(SmallDataset, EveryDetectorProducesAConsistentClustering) {
  const auto gen = dio::load_dataset(GetParam());
  const auto g = dg::build_csr(gen.edges, gen.num_vertices);
  const auto fg = dc::make_flow_graph(g);

  const auto seq = dc::sequential_infomap(g);

  dc::DistInfomapConfig di_cfg;
  di_cfg.num_ranks = 4;
  const auto dist = dc::distributed_infomap(g, di_cfg);

  const auto lou = dc::louvain(g);
  const auto dlou = dc::distributed_louvain(g, 4);
  const auto lf = dc::distributed_labelflow(g, 4);
  dc::RelaxMapConfig rm_cfg;
  rm_cfg.num_threads = 4;
  const auto rm = dc::relaxmap(g, rm_cfg);

  const struct {
    const char* name;
    const dg::Partition& assignment;
  } all[] = {{"seq", seq.assignment},     {"dist", dist.assignment},
             {"louvain", lou.assignment}, {"dist-louvain", dlou.assignment},
             {"labelflow", lf.assignment}, {"relaxmap", rm.assignment}};

  for (const auto& algo : all) {
    SCOPED_TRACE(algo.name);
    ASSERT_EQ(algo.assignment.size(), g.num_vertices());
    // Dense labels.
    dg::VertexId k = 0;
    const auto dense = dg::relabel_dense(algo.assignment, &k);
    EXPECT_EQ(dense, algo.assignment);
    EXPECT_GT(k, 1u);
    EXPECT_LT(k, g.num_vertices());

    // Structural summary is internally consistent.
    const auto summary = dq::summarize_partition(g, algo.assignment);
    EXPECT_EQ(summary.num_communities, k);
    EXPECT_GE(summary.coverage, 0.0);
    EXPECT_LE(summary.coverage, 1.0 + 1e-12);
    dg::VertexId covered = 0;
    for (const auto& cs : summary.communities) covered += cs.size;
    EXPECT_EQ(covered, g.num_vertices());

    // Meaningful structure found: the LFR stand-ins give high coverage; the
    // BA stand-in (ndweb) has only weak structure, so the floor is lower.
    EXPECT_GT(summary.coverage, 0.35);
    EXPECT_GT(dq::modularity(g, algo.assignment), 0.2);
  }

  // Flow-based detectors must beat or match the modularity family on the
  // flow objective, and vice versa on modularity.
  const double l_seq = dc::codelength_of_partition(fg, seq.assignment);
  const double l_lou = dc::codelength_of_partition(fg, lou.assignment);
  EXPECT_LE(l_seq, l_lou + 1e-9);
  EXPECT_GE(dq::modularity(g, lou.assignment),
            dq::modularity(g, seq.assignment) - 0.05);

  // Distributed Infomap close to sequential on the flow objective.
  EXPECT_LT(dist.codelength, l_seq * 1.15);
}

TEST(Integration, GroundTruthDatasetsAreLearnable) {
  for (const char* name : {"amazon", "dblp"}) {
    const auto gen = dio::load_dataset(name);
    ASSERT_TRUE(gen.ground_truth.has_value());
    const auto g = dg::build_csr(gen.edges, gen.num_vertices);
    const auto seq = dc::sequential_infomap(g);
    EXPECT_GT(dq::nmi(seq.assignment, *gen.ground_truth), 0.85) << name;
  }
}

TEST(Integration, MediumDatasetsSmoke) {
  // One medium stand-in end to end at p=4 — catches scaling-dependent bugs
  // the small graphs cannot.
  const auto gen = dio::load_dataset("youtube");
  const auto g = dg::build_csr(gen.edges, gen.num_vertices);
  dc::DistInfomapConfig cfg;
  cfg.num_ranks = 4;
  const auto dist = dc::distributed_infomap(g, cfg);
  const auto fg = dc::make_flow_graph(g);
  EXPECT_NEAR(dist.codelength,
              dc::codelength_of_partition(fg, dist.assignment), 1e-9);
  EXPECT_LT(dist.codelength, dist.singleton_codelength);
}
