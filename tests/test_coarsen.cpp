#include <gtest/gtest.h>

#include <numeric>

#include "core/coarsen.hpp"
#include "core/flowgraph.hpp"
#include "core/seq_infomap.hpp"
#include "graph/builder.hpp"
#include "graph/gen/generators.hpp"
#include "util/check.hpp"

namespace dc = dinfomap::core;
namespace dg = dinfomap::graph;

namespace {
dc::FlowGraph two_triangles() {
  return dc::make_flow_graph(dg::build_csr(
      {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {2, 3}}));
}
}  // namespace

TEST(Coarsen, TwoTrianglesToTwoVertices) {
  const auto fg = two_triangles();
  const auto result = dc::coarsen(fg, {0, 0, 0, 1, 1, 1});
  EXPECT_EQ(result.graph.num_vertices(), 2u);
  // Bridge edge: flow 1/14 each direction.
  EXPECT_NEAR(result.graph.out_flow(0), 1.0 / 14.0, 1e-12);
  // Intra flow becomes self flow: 3 edges × 1/14.
  EXPECT_NEAR(result.graph.self_flow(0), 3.0 / 14.0, 1e-12);
  // Node flow = half each (symmetric structure).
  EXPECT_NEAR(result.graph.node_flow[0], 0.5, 1e-12);
  EXPECT_TRUE(dc::validate_flow_graph(result.graph, /*level0=*/false));
}

TEST(Coarsen, FineToCoarseConsistent) {
  const auto fg = two_triangles();
  const auto result = dc::coarsen(fg, {9, 9, 9, 4, 4, 4});
  // Dense relabel ascending: module 4 → 0, module 9 → 1.
  EXPECT_EQ(result.fine_to_coarse[0], 1u);
  EXPECT_EQ(result.fine_to_coarse[3], 0u);
}

TEST(Coarsen, IdentityPartitionPreservesGraph) {
  const auto fg = two_triangles();
  std::vector<dg::VertexId> identity(fg.num_vertices());
  std::iota(identity.begin(), identity.end(), 0);
  const auto result = dc::coarsen(fg, identity);
  EXPECT_EQ(result.graph.num_vertices(), fg.num_vertices());
  for (dg::VertexId u = 0; u < fg.num_vertices(); ++u) {
    EXPECT_NEAR(result.graph.node_flow[u], fg.node_flow[u], 1e-12);
    EXPECT_NEAR(result.graph.out_flow(u), fg.out_flow(u), 1e-12);
  }
}

TEST(Coarsen, TotalFlowConserved) {
  const auto gg = dinfomap::graph::gen::lfr_lite({}, 5);
  const auto fg = dc::make_flow_graph(dg::build_csr(gg.edges, gg.num_vertices));
  const auto result = dc::coarsen(fg, *gg.ground_truth);
  double total = 0;
  for (auto f : result.graph.node_flow) total += f;
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_TRUE(dc::validate_flow_graph(result.graph, false));
}

TEST(Coarsen, CodelengthInvariantUnderContraction) {
  // L(partition on fine graph) == L(singletons on coarse graph): the merge
  // must not change the objective (Alg. 1's levels rely on this).
  const auto gg = dinfomap::graph::gen::sbm(120, 6, 0.3, 0.02, 8);
  const auto fg = dc::make_flow_graph(dg::build_csr(gg.edges, gg.num_vertices));
  const auto& truth = *gg.ground_truth;
  const double l_fine = dc::codelength_of_partition(fg, truth);

  const auto coarse = dc::coarsen(fg, truth);
  std::vector<dg::VertexId> singles(coarse.graph.num_vertices());
  std::iota(singles.begin(), singles.end(), 0);
  const double l_coarse = dc::codelength_of_partition(coarse.graph, singles);
  EXPECT_NEAR(l_fine, l_coarse, 1e-10);
}

TEST(Coarsen, RepeatedCoarseningStable) {
  const auto gg = dinfomap::graph::gen::ring_of_cliques(8, 4, 0);
  auto fg = dc::make_flow_graph(dg::build_csr(gg.edges, gg.num_vertices));
  // Contract cliques, then everything into one.
  auto r1 = dc::coarsen(fg, *gg.ground_truth);
  EXPECT_EQ(r1.graph.num_vertices(), 8u);
  std::vector<dg::VertexId> all_one(8, 0);
  auto r2 = dc::coarsen(r1.graph, all_one);
  EXPECT_EQ(r2.graph.num_vertices(), 1u);
  EXPECT_NEAR(r2.graph.node_flow[0], 1.0, 1e-12);
  EXPECT_NEAR(r2.graph.out_flow(0), 0.0, 1e-12);
}

TEST(Coarsen, RejectsSizeMismatch) {
  const auto fg = two_triangles();
  EXPECT_THROW(dc::coarsen(fg, {0, 0}), dinfomap::ContractViolation);
}
