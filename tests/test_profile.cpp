// Causal-profiler tests (DESIGN.md §13): critical-path reconstruction on
// synthetic traces with hand-computable answers, digest self-consistency on
// real runs (wait + comm + compute tiles the wall; critical path bounds max
// busy), flow-edge matching (zero unmatched messages), the profile watchdog
// rules with trace-instant mirroring, and the zero-perturbation contract —
// profiling on vs off must be bit-identical across thread counts, engines,
// and fault plans.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "core/dist_infomap.hpp"
#include "graph/builder.hpp"
#include "graph/gen/generators.hpp"
#include "obs/profile.hpp"
#include "obs/recorder.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"

namespace dc = dinfomap::core;
namespace dg = dinfomap::graph;
namespace obs = dinfomap::obs;
namespace gen = dinfomap::graph::gen;

namespace {

using Kind = obs::TraceEvent::Kind;

obs::TraceEvent ev(Kind kind, const char* name, double ts, int peer = -1,
                   int tag = -1, std::uint64_t ordinal = 0) {
  obs::TraceEvent e;
  e.kind = kind;
  e.name = name;
  e.ts_us = ts;
  e.peer = peer;
  e.tag = tag;
  e.ordinal = ordinal;
  return e;
}

dg::Csr small_graph(std::uint64_t seed) {
  const auto gg = gen::sbm(300, 10, 0.2, 0.01, seed);
  return dg::build_csr(gg.edges, gg.num_vertices);
}

int count_instants(const obs::TraceBuffer& track, const char* name) {
  int n = 0;
  for (const auto& e : track.events())
    if (e.kind == Kind::kInstant && std::string(e.name) == name) ++n;
  return n;
}

}  // namespace

// --- critical path on a synthetic trace with a known answer -----------------

TEST(Profile, CriticalPathSplicesSenderChainThroughFlowEdge) {
  // rank 0: works 0..10, blocks in recv_wait 10..90, works 90..100.
  // rank 1: works 0..45, sending the message rank 0 waits for at t=40.
  // The longest causal chain is rank 1's 40 µs up to the send, spliced into
  // rank 0's 10 µs of post-wait work landing at t=100: but chain accounting
  // is in *active* time, so cp = max(rank0: 10 + max(0→spliced 40) + 10 = 50,
  // rank1: 45). Known answer: 50.
  obs::Trace trace(2, /*enabled=*/true);
  trace.track(0).append_raw(ev(Kind::kBegin, "Stage1", 0));
  trace.track(0).append_raw(ev(Kind::kBegin, "recv_wait", 10));
  trace.track(0).append_raw(ev(Kind::kFlowRecv, "msg", 90, /*peer=*/1,
                               /*tag=*/5, /*ordinal=*/0));
  trace.track(0).append_raw(ev(Kind::kEnd, "recv_wait", 90));
  trace.track(0).append_raw(ev(Kind::kEnd, "Stage1", 100));
  trace.track(1).append_raw(ev(Kind::kBegin, "Stage1", 0));
  trace.track(1).append_raw(ev(Kind::kFlowSend, "msg", 40, /*peer=*/0,
                               /*tag=*/5, /*ordinal=*/0));
  trace.track(1).append_raw(ev(Kind::kEnd, "Stage1", 45));

  const obs::ProfileDigest d = obs::build_profile(trace);
  EXPECT_EQ(d.num_ranks, 2);
  EXPECT_DOUBLE_EQ(d.wall_us, 100.0);
  EXPECT_DOUBLE_EQ(d.critical_path_us, 50.0);
  EXPECT_EQ(d.messages, 1u);
  EXPECT_EQ(d.unmatched_sends, 0u);
  EXPECT_EQ(d.unmatched_recvs, 0u);

  ASSERT_EQ(d.ranks.size(), 2u);
  EXPECT_DOUBLE_EQ(d.ranks[0].wall_us, 100.0);
  EXPECT_DOUBLE_EQ(d.ranks[0].wait_us, 80.0);
  EXPECT_DOUBLE_EQ(d.ranks[0].comm_us, 0.0);
  EXPECT_DOUBLE_EQ(d.ranks[0].compute_us, 20.0);
  EXPECT_DOUBLE_EQ(d.ranks[0].busy_us, 20.0);
  EXPECT_DOUBLE_EQ(d.ranks[1].wall_us, 45.0);
  EXPECT_DOUBLE_EQ(d.ranks[1].wait_us, 0.0);
  EXPECT_DOUBLE_EQ(d.ranks[1].busy_us, 45.0);
  // Critical path dominates every rank's busy time.
  for (const auto& r : d.ranks) EXPECT_GE(d.critical_path_us, r.busy_us);

  ASSERT_EQ(d.channels.size(), 1u);
  EXPECT_EQ(d.channels[0].src, 1);
  EXPECT_EQ(d.channels[0].dst, 0);
  EXPECT_EQ(d.channels[0].messages, 1u);
  EXPECT_EQ(d.channels[0].max_in_flight, 1u);
  EXPECT_EQ(d.channels[0].latency_us.count(), 1u);
  EXPECT_EQ(d.channels[0].latency_us.max(), 50u);  // sent 40, consumed 90
}

TEST(Profile, UnmatchedFlowsAreCountedNotFatal) {
  obs::Trace trace(2, /*enabled=*/true);
  trace.track(0).append_raw(ev(Kind::kFlowSend, "msg", 10, 1, 3, 0));
  trace.track(1).append_raw(ev(Kind::kFlowRecv, "msg", 20, 0, 9, 4));
  const obs::ProfileDigest d = obs::build_profile(trace);
  EXPECT_EQ(d.messages, 0u);
  EXPECT_EQ(d.unmatched_sends, 1u);  // tag 3 never consumed
  EXPECT_EQ(d.unmatched_recvs, 1u);  // tag 9 never sent
}

// --- collective wait attribution & straggler detection ----------------------

TEST(Profile, CollectiveWaitChargedToLastArriver) {
  // Both ranks run "PhaseX"; rank 0 reaches the barrier at t=10, rank 1
  // straggles in at t=48, both leave at t=50. Rank 0's 38 µs ahead of the
  // last arrival is collective wait, charged to straggler rank 1.
  obs::Trace trace(2, /*enabled=*/true);
  trace.track(0).append_raw(ev(Kind::kBegin, "PhaseX", 0));
  trace.track(0).append_raw(ev(Kind::kCollectiveArrive, "barrier", 10, -1, 100));
  trace.track(0).append_raw(ev(Kind::kCollectiveDepart, "barrier", 50, -1, 100));
  trace.track(0).append_raw(ev(Kind::kEnd, "PhaseX", 60));
  trace.track(1).append_raw(ev(Kind::kBegin, "PhaseX", 0));
  trace.track(1).append_raw(ev(Kind::kCollectiveArrive, "barrier", 48, -1, 100));
  trace.track(1).append_raw(ev(Kind::kCollectiveDepart, "barrier", 50, -1, 100));
  trace.track(1).append_raw(ev(Kind::kEnd, "PhaseX", 60));

  const obs::ProfileDigest d = obs::build_profile(trace);
  ASSERT_EQ(d.phases.size(), 1u);
  const obs::PhaseProfile& ph = d.phases[0];
  EXPECT_EQ(ph.name, "PhaseX");
  EXPECT_EQ(ph.instances, 1u);
  EXPECT_DOUBLE_EQ(ph.wait_us, 38.0);
  EXPECT_DOUBLE_EQ(ph.max_skew_us, 38.0);
  EXPECT_EQ(ph.worst_rank, 1);
  ASSERT_EQ(ph.caused_wait_us.size(), 2u);
  EXPECT_DOUBLE_EQ(ph.caused_wait_us[0], 0.0);
  EXPECT_DOUBLE_EQ(ph.caused_wait_us[1], 38.0);
  EXPECT_DOUBLE_EQ(d.ranks[0].collective_wait_us, 38.0);
  EXPECT_DOUBLE_EQ(d.ranks[1].collective_wait_us, 0.0);
  // Occupancy decomposition: rank 0 spent 40 inside the collective, none of
  // it in recv_wait, so comm = 40 and compute = 60 − 40 = 20.
  EXPECT_DOUBLE_EQ(d.ranks[0].comm_us, 40.0);
  EXPECT_DOUBLE_EQ(d.ranks[0].compute_us, 20.0);

  // The straggler rule pins rank 1 once the wait clears the noise floor.
  obs::WatchdogOptions opt;
  opt.min_straggler_wait_us = 10.0;
  const auto anomalies = obs::analyze_profile(d, opt);
  ASSERT_EQ(anomalies.size(), 1u);
  EXPECT_EQ(anomalies[0].kind, "straggler_skew");
  EXPECT_EQ(anomalies[0].rank, 1);
}

TEST(Profile, WaitDominatedRuleRespectsFloorAndThreshold) {
  obs::Trace trace(1, /*enabled=*/true);
  trace.track(0).append_raw(ev(Kind::kBegin, "Stage1", 0));
  trace.track(0).append_raw(ev(Kind::kBegin, "recv_wait", 10));
  trace.track(0).append_raw(ev(Kind::kEnd, "recv_wait", 90));
  trace.track(0).append_raw(ev(Kind::kEnd, "Stage1", 100));
  const obs::ProfileDigest d = obs::build_profile(trace);

  obs::WatchdogOptions opt;
  opt.min_profile_wall_us = 50.0;  // 100 µs wall is above the floor
  auto anomalies = obs::analyze_profile(d, opt);
  ASSERT_EQ(anomalies.size(), 1u);  // 80% blocked > 60% threshold
  EXPECT_EQ(anomalies[0].kind, "wait_dominated");
  EXPECT_EQ(anomalies[0].rank, 0);

  opt.min_profile_wall_us = 1e6;  // runs this short are never judged
  EXPECT_TRUE(obs::analyze_profile(d, opt).empty());
  opt.min_profile_wall_us = 50.0;
  opt.wait_dominated_threshold = 0.9;  // 80% is under the bar
  EXPECT_TRUE(obs::analyze_profile(d, opt).empty());
}

// --- recorder integration: findings logged, typed, and mirrored -------------

TEST(Profile, RecorderMirrorsProfileFindingsIntoTrace) {
  obs::ObsOptions opt;
  opt.enabled = true;
  opt.watchdog_options.min_profile_wall_us = 50.0;
  opt.watchdog_options.min_straggler_wait_us = 10.0;
  obs::Recorder rec(2, opt);
  // Rank 0 is wait-dominated; rank 1 is the straggler of PhaseX's barrier.
  rec.track(0)->append_raw(ev(Kind::kBegin, "PhaseX", 0));
  rec.track(0)->append_raw(ev(Kind::kBegin, "recv_wait", 1));
  rec.track(0)->append_raw(ev(Kind::kEnd, "recv_wait", 80));
  rec.track(0)->append_raw(ev(Kind::kCollectiveArrive, "barrier", 80, -1, 7));
  rec.track(0)->append_raw(ev(Kind::kCollectiveDepart, "barrier", 120, -1, 7));
  rec.track(0)->append_raw(ev(Kind::kEnd, "PhaseX", 121));
  rec.track(1)->append_raw(ev(Kind::kBegin, "PhaseX", 0));
  rec.track(1)->append_raw(ev(Kind::kCollectiveArrive, "barrier", 118, -1, 7));
  rec.track(1)->append_raw(ev(Kind::kCollectiveDepart, "barrier", 120, -1, 7));
  rec.track(1)->append_raw(ev(Kind::kEnd, "PhaseX", 121));

  rec.finish_profile();
  ASSERT_NE(rec.profile(), nullptr);

  bool saw_wait = false;
  bool saw_straggler = false;
  for (const auto& a : rec.anomalies()) {
    if (a.kind == "wait_dominated") {
      saw_wait = true;
      EXPECT_EQ(a.rank, 0);
    }
    if (a.kind == "straggler_skew") {
      saw_straggler = true;
      EXPECT_EQ(a.rank, 1);
    }
  }
  EXPECT_TRUE(saw_wait);
  EXPECT_TRUE(saw_straggler);
  // Each finding is mirrored as an "anomaly" instant on the culprit's track,
  // with timestamps later than the profiled window (the digest was built
  // before mirroring, so they cannot contaminate it).
  EXPECT_GE(count_instants(rec.trace().track(0), "anomaly"), 1);
  EXPECT_GE(count_instants(rec.trace().track(1), "anomaly"), 1);
  EXPECT_DOUBLE_EQ(rec.profile()->wall_us, 121.0);
}

TEST(Profile, WatchdogMirrorsRoundRuleFindingsIntoTrace) {
  obs::ObsOptions opt;
  opt.enabled = true;
  obs::Recorder rec(1, opt);
  obs::RoundSample a;
  a.level = 0;
  a.round = 0;
  a.codelength = 5.0;
  obs::RoundSample b = a;
  b.round = 1;
  b.codelength = 6.0;  // regression
  b.is_epoch = true;   // and a thrashing epoch
  b.worklist_popped = 1000;
  b.worklist_requeued = 8000;
  rec.record_round(0, a);
  rec.record_round(0, b);
  rec.finish_profile();  // trace is empty: no profile findings
  rec.finish_watchdog();

  bool saw_mdl = false;
  bool saw_thrash = false;
  for (const auto& an : rec.anomalies()) {
    if (an.kind == "mdl_regression") saw_mdl = true;
    if (an.kind == "worklist_thrash") {
      saw_thrash = true;
      EXPECT_EQ(an.rank, 0);
    }
  }
  EXPECT_TRUE(saw_mdl);
  EXPECT_TRUE(saw_thrash);
  EXPECT_GE(count_instants(rec.trace().track(0), "anomaly"), 2);
}

// --- digest JSON ------------------------------------------------------------

TEST(Profile, DigestJsonIsByteStableAndCarriesSchema) {
  obs::Trace trace(2, /*enabled=*/true);
  trace.track(0).append_raw(ev(Kind::kBegin, "Stage1", 0));
  trace.track(0).append_raw(ev(Kind::kFlowSend, "msg", 5, 1, 2, 0));
  trace.track(0).append_raw(ev(Kind::kEnd, "Stage1", 30));
  trace.track(1).append_raw(ev(Kind::kBegin, "Stage1", 0));
  trace.track(1).append_raw(ev(Kind::kFlowRecv, "msg", 20, 0, 2, 0));
  trace.track(1).append_raw(ev(Kind::kEnd, "Stage1", 30));
  const obs::ProfileDigest d = obs::build_profile(trace);
  const std::string json = d.to_json();
  EXPECT_EQ(json, d.to_json());  // deterministic serialization
  EXPECT_NE(json.find("\"schema\": \"dinfomap.profile/1\""), std::string::npos);
  EXPECT_NE(json.find("\"critical_path_us\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  // Sorted keys within objects (probed with keys unique to the top level).
  EXPECT_LT(json.find("\"channels\""), json.find("\"critical_path_us\""));
  EXPECT_LT(json.find("\"critical_path_us\""), json.find("\"num_ranks\""));
  EXPECT_LT(json.find("\"num_ranks\""), json.find("\"unmatched_recvs\""));
}

// --- real-run self-consistency ----------------------------------------------

TEST(Profile, RealRunDigestIsSelfConsistent) {
  const auto g = small_graph(11);
  dc::DistInfomapConfig cfg;
  cfg.num_ranks = 4;
  cfg.obs.enabled = true;
  const auto result = dc::distributed_infomap(g, cfg);
  ASSERT_TRUE(result.report.has_profile);
  const obs::ProfileDigest& d = result.report.profile;
  EXPECT_EQ(d.schema, obs::kProfileSchema);
  EXPECT_EQ(d.num_ranks, 4);
  EXPECT_GT(d.wall_us, 0.0);

  double max_busy = 0;
  for (const obs::RankProfile& r : d.ranks) {
    // The decomposition tiles the rank's wall exactly (compute is defined as
    // the remainder; the tolerance is double rounding only).
    EXPECT_NEAR(r.wait_us + r.comm_us + r.compute_us, r.wall_us,
                1e-6 * std::max(1.0, r.wall_us))
        << "rank " << r.rank;
    EXPECT_GE(r.wait_us, 0.0);
    EXPECT_GE(r.comm_us, 0.0);
    EXPECT_GE(r.compute_us, 0.0);
    EXPECT_LE(r.wall_us, d.wall_us + 1e-6);
    max_busy = std::max(max_busy, r.busy_us);
  }
  // The critical path can never be shorter than the busiest rank, and never
  // longer than the run itself.
  EXPECT_GE(d.critical_path_us, max_busy - 1e-6);
  EXPECT_LE(d.critical_path_us, d.wall_us + 1e-6);

  // Every transport message pairs a send with its consumption: the per-rank
  // FIFO/min-seq ordinal discipline leaves nothing unmatched.
  EXPECT_GT(d.messages, 0u);
  EXPECT_EQ(d.unmatched_sends, 0u);
  EXPECT_EQ(d.unmatched_recvs, 0u);
  ASSERT_FALSE(d.channels.empty());
  for (const obs::ChannelProfile& ch : d.channels) {
    EXPECT_NE(ch.src, ch.dst);
    EXPECT_EQ(ch.messages, ch.latency_us.count());
    EXPECT_GE(ch.max_in_flight, 1u);
  }
  // The paper's phases appear in the collective-wait attribution.
  ASSERT_FALSE(d.phases.empty());
  bool known_phase = false;
  for (const obs::PhaseProfile& ph : d.phases) {
    EXPECT_GT(ph.instances, 0u);
    if (ph.name == "Stage1" || ph.name == "Stage2" ||
        ph.name == "MergeLevel" || ph.name == "FinalProjection" ||
        ph.name == "Redistribute" || ph.name == "(top)")
      known_phase = true;
  }
  EXPECT_TRUE(known_phase);
  // Phases arrive sorted by wait, heaviest first.
  for (std::size_t i = 1; i < d.phases.size(); ++i)
    EXPECT_GE(d.phases[i - 1].wait_us, d.phases[i].wait_us);
}

TEST(Profile, AsyncRunAttributesEpochsAndStaysConsistent) {
  const auto g = small_graph(13);
  dc::DistInfomapConfig cfg;
  cfg.num_ranks = 4;
  cfg.async = true;
  cfg.obs.enabled = true;
  const auto result = dc::distributed_infomap(g, cfg);
  ASSERT_TRUE(result.report.has_profile);
  const obs::ProfileDigest& d = result.report.profile;
  EXPECT_EQ(d.unmatched_sends, 0u);
  EXPECT_EQ(d.unmatched_recvs, 0u);
  double max_busy = 0;
  for (const obs::RankProfile& r : d.ranks) {
    EXPECT_NEAR(r.wait_us + r.comm_us + r.compute_us, r.wall_us,
                1e-6 * std::max(1.0, r.wall_us));
    max_busy = std::max(max_busy, r.busy_us);
  }
  EXPECT_GE(d.critical_path_us, max_busy - 1e-6);
  // The async engine's epochs are first-class phases in the attribution.
  bool saw_epoch = false;
  for (const obs::PhaseProfile& ph : d.phases)
    if (ph.name == "AsyncEpoch") saw_epoch = true;
  EXPECT_TRUE(saw_epoch);
}

// --- zero perturbation ------------------------------------------------------

TEST(ProfileDeterminism, ProfiledRunsBitIdenticalAcrossThreadsAndEngines) {
  const auto g = small_graph(5);
  for (const bool async : {false, true}) {
    for (const int threads : {1, 2, 4}) {
      dc::DistInfomapConfig cfg;
      cfg.num_ranks = 4;
      cfg.threads_per_rank = threads;
      cfg.async = async;
      cfg.obs.enabled = false;
      const auto off = dc::distributed_infomap(g, cfg);
      cfg.obs.enabled = true;  // trace + profile + watchdog all armed
      const auto on = dc::distributed_infomap(g, cfg);
      const std::string label =
          (async ? "async" : "sync") + std::string(" t=") +
          std::to_string(threads);
      EXPECT_EQ(off.assignment, on.assignment) << label;
      EXPECT_DOUBLE_EQ(off.codelength, on.codelength) << label;
      EXPECT_EQ(off.stage1_rounds, on.stage1_rounds) << label;
      EXPECT_EQ(off.stage1_round_codelengths, on.stage1_round_codelengths)
          << label;
      ASSERT_TRUE(on.report.has_profile) << label;
      EXPECT_EQ(on.report.profile.unmatched_sends, 0u) << label;
      EXPECT_EQ(on.report.profile.unmatched_recvs, 0u) << label;
    }
  }
}

TEST(ProfileDeterminism, ProfiledRunsBitIdenticalUnderFaultPlan) {
  const auto g = small_graph(9);
  dc::DistInfomapConfig cfg;
  cfg.num_ranks = 4;
  cfg.faults.drop = 0.02;
  cfg.faults.duplicate = 0.02;
  cfg.faults.seed = 77;
  cfg.comm_watchdog_ms = 20'000;
  cfg.obs.enabled = false;
  const auto off = dc::distributed_infomap(g, cfg);
  cfg.obs.enabled = true;
  const auto on = dc::distributed_infomap(g, cfg);
  EXPECT_EQ(off.assignment, on.assignment);
  EXPECT_DOUBLE_EQ(off.codelength, on.codelength);
  EXPECT_EQ(off.stage1_rounds, on.stage1_rounds);
  ASSERT_TRUE(on.report.has_profile);
  // Recovery keeps consumption order canonical, so flows still pair exactly
  // even with drops and duplicates on the wire.
  EXPECT_EQ(on.report.profile.unmatched_sends, 0u);
  EXPECT_EQ(on.report.profile.unmatched_recvs, 0u);
  EXPECT_GT(on.report.profile.messages, 0u);
}
