// Property sweep: the distributed Infomap invariants across graph families ×
// rank counts, plus failure injection on corrupted inputs.
#include <gtest/gtest.h>

#include <tuple>

#include "core/dist_infomap.hpp"
#include "core/flowgraph.hpp"
#include "core/seq_infomap.hpp"
#include "graph/builder.hpp"
#include "graph/gen/generators.hpp"
#include "util/check.hpp"

namespace dc = dinfomap::core;
namespace dg = dinfomap::graph;
namespace gen = dinfomap::graph::gen;

namespace {

enum class Family { kEr, kBa, kRmat, kSbm, kLfr, kRing };

const char* family_name(Family f) {
  switch (f) {
    case Family::kEr: return "er";
    case Family::kBa: return "ba";
    case Family::kRmat: return "rmat";
    case Family::kSbm: return "sbm";
    case Family::kLfr: return "lfr";
    case Family::kRing: return "ring";
  }
  return "?";
}

dg::Csr make_graph(Family f) {
  switch (f) {
    case Family::kEr: {
      const auto g = gen::erdos_renyi(300, 1200, 5);
      return dg::build_csr(g.edges, g.num_vertices);
    }
    case Family::kBa: {
      const auto g = gen::barabasi_albert(400, 2, 5);
      return dg::build_csr(g.edges, g.num_vertices);
    }
    case Family::kRmat: {
      const auto g = gen::rmat(9, 6, 0.57, 0.19, 0.19, 5);
      return dg::build_csr(g.edges, g.num_vertices);
    }
    case Family::kSbm: {
      const auto g = gen::sbm(300, 6, 0.2, 0.01, 5);
      return dg::build_csr(g.edges, g.num_vertices);
    }
    case Family::kLfr: {
      gen::LfrLiteParams p;
      p.n = 400;
      const auto g = gen::lfr_lite(p, 5);
      return dg::build_csr(g.edges, g.num_vertices);
    }
    case Family::kRing: {
      const auto g = gen::ring_of_cliques(12, 5, 0);
      return dg::build_csr(g.edges, g.num_vertices);
    }
  }
  throw std::logic_error("unreachable");
}

class DistSweep : public ::testing::TestWithParam<std::tuple<Family, int>> {};

std::string sweep_name(const ::testing::TestParamInfo<DistSweep::ParamType>& info) {
  return std::string(family_name(std::get<0>(info.param))) + "_p" +
         std::to_string(std::get<1>(info.param));
}

}  // namespace

INSTANTIATE_TEST_SUITE_P(
    FamiliesByRanks, DistSweep,
    ::testing::Combine(::testing::Values(Family::kEr, Family::kBa, Family::kRmat,
                                         Family::kSbm, Family::kLfr, Family::kRing),
                       ::testing::Values(1, 3, 4)),
    sweep_name);

TEST_P(DistSweep, CoreInvariantsHold) {
  const auto [family, p] = GetParam();
  const auto g = make_graph(family);
  dc::DistInfomapConfig cfg;
  cfg.num_ranks = p;
  const auto result = dc::distributed_infomap(g, cfg);

  // 1. Assignment covers all vertices with dense labels.
  ASSERT_EQ(result.assignment.size(), g.num_vertices());
  const dg::VertexId k = result.num_modules();
  std::vector<bool> seen(k, false);
  for (auto m : result.assignment) {
    ASSERT_LT(m, k);
    seen[m] = true;
  }
  for (dg::VertexId m = 0; m < k; ++m) EXPECT_TRUE(seen[m]) << "gap at " << m;

  // 2. Reported L is the exact objective of the assignment.
  const auto fg = dc::make_flow_graph(g);
  EXPECT_NEAR(result.codelength,
              dc::codelength_of_partition(fg, result.assignment), 1e-9);

  // 3. No worse than the trivial all-singletons partition.
  EXPECT_LE(result.codelength, result.singleton_codelength + 1e-9);

  // 4. Trace is near-monotone: a single synchronous round may overshoot on
  // stale remote statistics (the level then stops), so allow a bounded
  // regression per level rather than strict monotonicity.
  for (const auto& row : result.trace)
    EXPECT_LE(row.codelength_after, row.codelength_before * 1.05 + 1e-9);

  // 5. Communication happened iff p > 1.
  std::uint64_t bytes = 0;
  for (const auto& c : result.comm_counters) bytes += c.total_bytes();
  if (p == 1)
    EXPECT_EQ(bytes, 0u);
  else
    EXPECT_GT(bytes, 0u);
}

TEST_P(DistSweep, ExactHubVariantKeepsInvariants) {
  const auto [family, p] = GetParam();
  if (p == 1) GTEST_SKIP() << "hub consensus is trivial at p=1";
  const auto g = make_graph(family);
  dc::DistInfomapConfig cfg;
  cfg.num_ranks = p;
  cfg.exact_hub_moves = true;
  const auto result = dc::distributed_infomap(g, cfg);
  const auto fg = dc::make_flow_graph(g);
  EXPECT_NEAR(result.codelength,
              dc::codelength_of_partition(fg, result.assignment), 1e-9);
  EXPECT_LE(result.codelength, result.singleton_codelength + 1e-9);
}

TEST_P(DistSweep, DeterministicRepeat) {
  const auto [family, p] = GetParam();
  if (p == 1) GTEST_SKIP() << "covered by the p=3/4 cases";
  const auto g = make_graph(family);
  dc::DistInfomapConfig cfg;
  cfg.num_ranks = p;
  const auto a = dc::distributed_infomap(g, cfg);
  const auto b = dc::distributed_infomap(g, cfg);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.stage1_rounds, b.stage1_rounds);
  EXPECT_DOUBLE_EQ(a.codelength, b.codelength);
}

TEST(DistChaos, DeliveryTimingDoesNotChangeResults) {
  // The protocol is bulk-synchronous: random per-message delivery delays
  // must not change a single bit of the outcome.
  const auto gg = gen::lfr_lite({}, 47);
  const auto g = dg::build_csr(gg.edges, gg.num_vertices);
  dc::DistInfomapConfig calm;
  calm.num_ranks = 4;
  auto chaotic = calm;
  chaotic.chaos_delay_us = 50;
  const auto a = dc::distributed_infomap(g, calm);
  const auto b = dc::distributed_infomap(g, chaotic);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_DOUBLE_EQ(a.codelength, b.codelength);
  EXPECT_EQ(a.stage1_rounds, b.stage1_rounds);
}

TEST(DistFailureInjection, CorruptedPartitionRejected) {
  const auto gg = gen::ring_of_cliques(6, 4, 0);
  const auto g = dg::build_csr(gg.edges, gg.num_vertices);
  dc::DistInfomapConfig cfg;
  cfg.num_ranks = 3;

  // Drop one arc: the partition no longer covers the graph.
  auto part = dinfomap::partition::make_delegate(
      g, 3, dc::resolve_degree_threshold(g, cfg));
  ASSERT_FALSE(part.rank_arcs[0].empty());
  part.rank_arcs[0].pop_back();
  EXPECT_THROW(dc::distributed_infomap(g, part, cfg),
               dinfomap::ContractViolation);
}

TEST(DistFailureInjection, DuplicatedArcRejected) {
  const auto gg = gen::ring_of_cliques(6, 4, 0);
  const auto g = dg::build_csr(gg.edges, gg.num_vertices);
  dc::DistInfomapConfig cfg;
  cfg.num_ranks = 2;
  auto part = dinfomap::partition::make_delegate(
      g, 2, dc::resolve_degree_threshold(g, cfg));
  part.rank_arcs[1].push_back(part.rank_arcs[1].front());
  EXPECT_THROW(dc::distributed_infomap(g, part, cfg),
               dinfomap::ContractViolation);
}

TEST(DistFailureInjection, NonRoundRobinOwnershipRejected) {
  const auto gg = gen::ring_of_cliques(6, 4, 0);
  const auto g = dg::build_csr(gg.edges, gg.num_vertices);
  dc::DistInfomapConfig cfg;
  cfg.num_ranks = 2;
  auto part = dinfomap::partition::make_oned_balanced(g, 2);
  EXPECT_THROW(dc::distributed_infomap(g, part, cfg),
               dinfomap::ContractViolation);
}

TEST(DistFailureInjection, SelfLoopInputRejected) {
  const auto g = dg::build_csr({{0, 0, 1.0}, {0, 1, 1.0}, {1, 2, 1.0}});
  dc::DistInfomapConfig cfg;
  cfg.num_ranks = 2;
  EXPECT_THROW(dc::distributed_infomap(g, cfg), dinfomap::ContractViolation);
}

TEST(DistFailureInjection, ValidationCanBeDisabled) {
  // With validation off, a *valid* partition still runs (the flag only
  // skips the audit, it does not change behaviour).
  const auto gg = gen::ring_of_cliques(6, 4, 0);
  const auto g = dg::build_csr(gg.edges, gg.num_vertices);
  dc::DistInfomapConfig cfg;
  cfg.num_ranks = 2;
  cfg.validate_inputs = false;
  const auto result = dc::distributed_infomap(g, cfg);
  EXPECT_EQ(result.assignment.size(), g.num_vertices());
}
