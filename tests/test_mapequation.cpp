// Map-equation math: plogp, flow graphs, and the incremental ΔL against
// from-scratch recomputation (the property the whole optimizer rests on).
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <unordered_map>

#include "core/flowgraph.hpp"
#include "core/mapequation.hpp"
#include "core/seq_infomap.hpp"
#include "graph/builder.hpp"
#include "graph/gen/generators.hpp"
#include "util/check.hpp"
#include "util/random.hpp"
#include "util/sorted.hpp"

namespace dc = dinfomap::core;
namespace dg = dinfomap::graph;

TEST(Plogp, BasicsAndZeroExtension) {
  EXPECT_DOUBLE_EQ(dc::plogp(0.0), 0.0);
  EXPECT_DOUBLE_EQ(dc::plogp(1.0), 0.0);
  EXPECT_DOUBLE_EQ(dc::plogp(0.5), -0.5);
  EXPECT_DOUBLE_EQ(dc::plogp(2.0), 2.0);
}

TEST(FlowGraph, NodeFlowsSumToOne) {
  const auto g = dg::build_csr({{0, 1}, {1, 2}, {0, 2}, {2, 3}});
  const auto fg = dc::make_flow_graph(g);
  EXPECT_TRUE(dc::validate_flow_graph(fg, /*level0=*/true));
  double sum = 0;
  for (auto f : fg.node_flow) sum += f;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  // Vertex 2 has degree 3 of 8 arc-ends.
  EXPECT_NEAR(fg.node_flow[2], 3.0 / 8.0, 1e-12);
}

TEST(FlowGraph, SelfLoopsExcludedFromLinkFlowButKeptInNodeFlow) {
  const auto g = dg::build_csr({{0, 1, 1.0}, {0, 0, 2.0}});
  const auto fg = dc::make_flow_graph(g);
  // 2W counts only the non-self edge: flows normalized by 2.
  EXPECT_NEAR(fg.out_flow(0), 0.5, 1e-12);
  EXPECT_NEAR(fg.self_flow(0), 1.0, 1e-12);
  EXPECT_NEAR(fg.node_flow[0], 1.5, 1e-12);
}

TEST(FlowGraph, RejectsGraphWithoutLinks) {
  const auto g = dg::build_csr({{0, 0, 1.0}}, 2);
  EXPECT_THROW(dc::make_flow_graph(g), dinfomap::ContractViolation);
}

TEST(CodelengthTerms, TwoCliquesKnownValue) {
  // Two triangles bridged by one edge; modules = the triangles.
  const auto g = dg::build_csr(
      {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {2, 3}});
  const auto fg = dc::make_flow_graph(g);
  const std::vector<dg::VertexId> mods = {0, 0, 0, 1, 1, 1};
  const double L = dc::codelength_of_partition(fg, mods);
  // Hand-computed: W = 7, q_m = 1/14 each, q_tot = 1/7, p_m = 1/2.
  const double q = 1.0 / 14.0;
  double expected = dc::plogp(2 * q) - 2 * (2 * dc::plogp(q));
  expected += 2 * dc::plogp(q + 0.5);
  double node_term = 0;
  for (auto f : fg.node_flow) node_term += dc::plogp(f);
  expected -= node_term;
  EXPECT_NEAR(L, expected, 1e-12);
}

TEST(CodelengthTerms, AllInOneModuleHasZeroExit) {
  const auto g = dg::build_csr({{0, 1}, {1, 2}, {0, 2}});
  const auto fg = dc::make_flow_graph(g);
  const double L = dc::codelength_of_partition(fg, {7, 7, 7});
  // Single module: L = −Σ plogp(p_α) + plogp(1) = entropy of visit probs.
  double expected = 0;
  for (auto f : fg.node_flow) expected -= dc::plogp(f);
  EXPECT_NEAR(L, expected, 1e-12);
}

TEST(CodelengthTerms, SingletonsBeatNothingOnCliquePair) {
  const auto g = dg::build_csr(
      {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {2, 3}});
  const auto fg = dc::make_flow_graph(g);
  std::vector<dg::VertexId> singles(6);
  std::iota(singles.begin(), singles.end(), 0);
  const double l_singles = dc::codelength_of_partition(fg, singles);
  const double l_truth = dc::codelength_of_partition(fg, {0, 0, 0, 1, 1, 1});
  EXPECT_LT(l_truth, l_singles);  // communities compress the walk
}

// The central property: evaluate_move's ΔL equals L(after) − L(before)
// recomputed from scratch, for random moves on random graphs.
class DeltaConsistency : public ::testing::TestWithParam<std::uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, DeltaConsistency,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST_P(DeltaConsistency, IncrementalMatchesRecompute) {
  const auto gg = dinfomap::graph::gen::sbm(60, 4, 0.3, 0.05, GetParam());
  const auto g = dg::build_csr(gg.edges, gg.num_vertices);
  const auto fg = dc::make_flow_graph(g);
  const dg::VertexId n = fg.num_vertices();

  dinfomap::util::Xoshiro256 rng(GetParam() * 977);
  // Random starting assignment into 6 modules.
  std::vector<dg::VertexId> mods(n);
  for (auto& m : mods) m = static_cast<dg::VertexId>(rng.bounded(6));

  for (int trial = 0; trial < 200; ++trial) {
    const auto u = static_cast<dg::VertexId>(rng.bounded(n));
    // Move u to the module of a random neighbor.
    const auto nbs = fg.csr.neighbors(u);
    if (nbs.empty()) continue;
    const auto target = mods[nbs[rng.bounded(nbs.size())].target];
    const auto cur = mods[u];
    if (target == cur) continue;

    // Build MoveDelta from scratch.
    dc::MoveDelta d;
    d.p_u = fg.node_flow[u];
    d.f_u = fg.out_flow(u);
    d.q_total = 0;
    double f_to_old = 0, f_to_new = 0;
    for (const auto& nb : nbs) {
      if (mods[nb.target] == cur) f_to_old += nb.weight;
      if (mods[nb.target] == target) f_to_new += nb.weight;
    }
    d.f_to_old = f_to_old;
    d.f_to_new = f_to_new;
    // Module stats from scratch.
    std::unordered_map<dg::VertexId, dc::ModuleStats> stats;
    for (dg::VertexId v = 0; v < n; ++v) {
      auto& s = stats[mods[v]];
      s.sum_pr += fg.node_flow[v];
      s.num_members += 1;
      for (const auto& nb : fg.csr.neighbors(v))
        if (mods[nb.target] != mods[v]) s.exit_pr += nb.weight;
    }
    // Sorted so the reference q_total is reduced in a fixed order — the
    // incremental path it is compared against is order-stable too.
    for (const dg::VertexId id : dinfomap::util::sorted_keys(stats))
      d.q_total += stats.at(id).exit_pr;
    d.old_stats = stats.at(cur);
    d.new_stats = stats.at(target);

    const double before = dc::codelength_of_partition(fg, mods);
    const auto out = dc::evaluate_move(d);
    mods[u] = target;
    const double after = dc::codelength_of_partition(fg, mods);
    EXPECT_NEAR(out.delta_codelength, after - before, 1e-10)
        << "trial " << trial << " u=" << u;
  }
}

TEST(EvaluateMove, SymmetricMoveRoundTripsToZero) {
  // Moving u A→B then B→A with consistent stats must cancel.
  const auto gg = dinfomap::graph::gen::ring_of_cliques(4, 5, 0);
  const auto g = dg::build_csr(gg.edges, gg.num_vertices);
  const auto fg = dc::make_flow_graph(g);
  std::vector<dg::VertexId> mods = *gg.ground_truth;

  const dg::VertexId u = 0;
  const double before = dc::codelength_of_partition(fg, mods);
  mods[u] = 1;
  const double mid = dc::codelength_of_partition(fg, mods);
  mods[u] = 0;
  const double after = dc::codelength_of_partition(fg, mods);
  EXPECT_NEAR(before, after, 1e-12);
  EXPECT_NE(before, mid);
}
